"""Phase 2's view of the project: import graph, call resolution, fixpoints.

Built from the :class:`~repro.lint.summaries.ModuleSummary` of every
analyzed file, never from ASTs — so the graph is cheap to rebuild each
run even when every module summary came out of the incremental cache.

The graph answers the three interprocedural questions the program rules
ask:

* does ``module.function`` produce a float on some return path
  (REP007), following ``return helper(...)`` chains across modules with
  a pessimistic fixpoint (cycles resolve to "not proven float");
* does ``module.function`` derive its return value from blessed seed
  material (REP008), with an optimistic fixpoint (a self-recursive
  derivation chain is innocent until a taint or unknown appears);
* which modules are reachable from a registry package's ``__init__``
  over project-internal import edges (REP009);
* what a function's **transitive effect set** is (REP011/REP012) — own
  effects plus everything reachable over resolved call edges, computed
  as a monotone set-once-per-tag fixpoint over the whole program;
* who calls ``module.function`` and from under which locks (REP010's
  caller-chain lock proof, REP013's fan-out provenance); and
* what **dimension** ``module.function`` returns (REP014-017) — a
  Kleene fixpoint from all-``unknown`` over every function's return
  dimension term.  The evaluator is monotone (``unknown`` absorbs), so
  each function's fact moves at most once and the iteration converges
  in at most ``#functions + 1`` deterministic rounds.
"""

from __future__ import annotations

from .summaries import CallSite, EffectSite, ModuleSummary, SeedProv, UnitSite
from .unitinfer import UNKNOWN, dims_clash, eval_term

__all__ = ["ProjectGraph"]


#: effect tags that make a function unsafe to memoize (REP011);
#: ``lock`` and ``memo-write`` are deliberately excluded — holding a
#: lock or writing a cache is not value-impurity
IMPURE_TAGS = frozenset(
    {
        "rng",
        "wall-clock",
        "io",
        "blocking",
        "process",
        "mutates-global",
        "mutates-param",
        "mutates-nonlocal",
    }
)

#: effect tags that stall an asyncio event loop (REP012)
BLOCKING_TAGS = frozenset({"blocking", "process", "io", "lock"})


class ProjectGraph:
    """Whole-program facts derived from per-module summaries."""

    def __init__(
        self,
        summaries: list[ModuleSummary],
        registries: dict[str, str] | None = None,
    ) -> None:
        #: module name → summary, for every analyzed module
        self.modules: dict[str, ModuleSummary] = {
            s.module: s for s in summaries
        }
        #: registry package → fnmatch pattern for member modules (REP009)
        self.registries: dict[str, str] = dict(registries or {})
        self._functions: dict[str, dict[str, object]] = {
            s.module: {fn.qualname: fn for fn in s.functions}
            for s in summaries
        }
        #: project-internal import edges (candidates filtered to members)
        self.import_edges: dict[str, tuple[str, ...]] = {
            s.module: tuple(
                m for m in s.imports if m in self.modules and m != s.module
            )
            for s in summaries
        }
        self._symbol_imports: dict[str, dict[str, tuple[str, str]]] = {
            s.module: {name: (mod, orig) for name, mod, orig in s.symbol_imports}
            for s in summaries
        }
        self._float_memo: dict[tuple[str, str], bool] = {}
        self._seed_memo: dict[tuple[str, str], tuple[bool, str]] = {}
        #: rounds the effect fixpoint took to converge (0 until computed;
        #: surfaced by ``repro lint --stats``)
        self.effect_iterations: int = 0
        self._effect_memo: dict[
            tuple[str, str], dict[str, tuple[str, tuple[str, ...]]]
        ] | None = None
        self._caller_index: dict[
            tuple[str, str], list[tuple[tuple[str, str], CallSite]]
        ] | None = None
        #: rounds the unit fixpoint took to converge (0 until computed;
        #: surfaced by ``repro lint --stats``)
        self.unit_iterations: int = 0
        self._return_dim_memo: dict[tuple[str, str], str] | None = None
        self._unit_mismatch_memo: list[
            tuple[ModuleSummary, UnitSite, str, str]
        ] | None = None

    # -- symbol resolution ---------------------------------------------------

    def resolve(self, module: str, name: str) -> tuple[str, str] | None:
        """Follow re-export chains to the defining ``(module, function)``.

        ``from repro.core import dbf_bound`` re-exported through a
        package ``__init__`` resolves to the module that actually
        defines the function.  Returns ``None`` for external modules,
        unknown names, and re-export cycles.
        """
        seen: set[tuple[str, str]] = set()
        while (module, name) not in seen:
            seen.add((module, name))
            if module not in self.modules:
                return None
            if name in self._functions[module]:
                return (module, name)
            origin = self._symbol_imports[module].get(name)
            if origin is None:
                # `from pkg import mod` style: the "symbol" may itself
                # be a submodule — nothing callable to resolve to
                return None
            module, name = origin
        return None

    def function(self, module: str, name: str):
        """The defining :class:`FunctionSummary`, or ``None``."""
        resolved = self.resolve(module, name)
        if resolved is None:
            return None
        return self._functions[resolved[0]][resolved[1]]

    # -- produces-float fixpoint (REP007) ------------------------------------

    def returns_float(self, module: str, name: str) -> bool:
        """Can a call to ``module.name`` produce a float?

        Pessimistic on cycles: a mutually recursive chain with no
        direct float evidence stays unproven, so REP007 never flags on
        speculation.
        """
        return self._returns_float((module, name), ())

    def _returns_float(
        self, key: tuple[str, str], stack: tuple[tuple[str, str], ...]
    ) -> bool:
        if key in self._float_memo:
            return self._float_memo[key]
        if key in stack:
            return False  # cycle: not proven
        resolved = self.resolve(*key)
        if resolved is None:
            return False
        fn = self._functions[resolved[0]][resolved[1]]
        result = fn.returns_float or any(
            self._returns_float(self.resolve(*dep) or dep, stack + (key,))
            for dep in fn.return_call_deps
        )
        self._float_memo[key] = result
        return result

    # -- derives-from-trial-seed fixpoint (REP008) ---------------------------

    def seed_ok(self, module: str, name: str) -> tuple[bool, str]:
        """Does every return of ``module.name`` derive from seed material?

        Returns ``(verdict, reason)`` where ``reason`` explains a
        ``False``.  Optimistic on cycles: recursion through the chain
        under test counts as derived, so only a genuine taint or
        unknown source breaks the verdict.
        """
        return self._seed_ok((module, name), ())

    def _seed_ok(
        self, key: tuple[str, str], stack: tuple[tuple[str, str], ...]
    ) -> tuple[bool, str]:
        if key in self._seed_memo:
            return self._seed_memo[key]
        if key in stack:
            return True, ""  # optimistic: the cycle alone is no taint
        resolved = self.resolve(*key)
        if resolved is None:
            return False, f"`{key[0]}.{key[1]}` is outside the analyzed program"
        fn = self._functions[resolved[0]][resolved[1]]
        if not fn.return_seed_provs:
            verdict = (
                False,
                f"`{key[0]}.{key[1]}` returns nothing seed-derived",
            )
            self._seed_memo[key] = verdict
            return verdict
        for prov in fn.return_seed_provs:
            ok, why = self.prov_verdict(prov, stack + (key,))
            if not ok:
                verdict = (False, why)
                self._seed_memo[key] = verdict
                return verdict
        self._seed_memo[key] = (True, "")
        return True, ""

    def prov_verdict(
        self,
        prov: SeedProv,
        _stack: tuple[tuple[str, str], ...] = (),
    ) -> tuple[bool, str]:
        """Judge one expression's provenance against the seed lattice."""
        if prov.taint:
            return False, prov.taint
        if prov.seed:
            return True, ""
        if prov.deps:
            for dep in prov.deps:
                ok, why = self._seed_ok(dep, _stack)
                if not ok:
                    return False, why
            return True, ""
        if prov.unknown:
            return False, prov.unknown
        return False, "value has no seed provenance"

    # -- transitive effects fixpoint (REP010-013) ----------------------------

    def effects(
        self, module: str, name: str
    ) -> dict[str, tuple[str, tuple[str, ...]]]:
        """Transitive effect set of ``module.name``.

        Maps effect tag → ``(detail, chain)`` where ``chain`` is the
        ``module.qualname`` hops from this function to the one that
        exhibits the effect directly (empty for own effects).  Unknown
        or unresolvable functions have no proven effects (empty dict) —
        the rules stay silent rather than speculate.
        """
        if self._effect_memo is None:
            self._effect_memo = self._compute_effects()
        resolved = self.resolve(module, name)
        if resolved is None:
            return {}
        return self._effect_memo.get(resolved, {})

    def _compute_effects(
        self,
    ) -> dict[tuple[str, str], dict[str, tuple[str, tuple[str, ...]]]]:
        """One whole-program pass: propagate effects over call edges.

        Monotone and set-once per (function, tag), so the fixpoint
        converges in at most ``longest acyclic call chain`` rounds; the
        deterministic iteration order (sorted modules, definition order
        within each) makes the recorded chains reproducible across
        runs, jobs counts, and cache states.
        """
        facts: dict[
            tuple[str, str], dict[str, tuple[str, tuple[str, ...]]]
        ] = {}
        order: list[tuple[tuple[str, str], tuple[CallSite, ...]]] = []
        for module in sorted(self._functions):
            for qualname, fn in self._functions[module].items():
                key = (module, qualname)
                own: dict[str, tuple[str, tuple[str, ...]]] = {}
                for site in fn.effects:
                    assert isinstance(site, EffectSite)
                    own[site.tag] = (site.detail, ())
                facts[key] = own
                order.append((key, fn.calls))
        rounds = 0
        changed = True
        while changed:
            changed = False
            rounds += 1
            for key, calls in order:
                own = facts[key]
                for call in calls:
                    target = self.resolve(call.module, call.name)
                    if target is None or target == key:
                        continue
                    # a nested function's nonlocal mutation targets a
                    # local of the function it is nested in: from the
                    # enclosing function outward the effect is invisible
                    # (the classic `nodes += 1` search-budget closure)
                    nested_in_caller = target[0] == key[0] and target[
                        1
                    ].startswith(key[1] + ".")
                    for tag, (detail, chain) in facts[target].items():
                        if tag in own:
                            continue
                        if tag == "mutates-nonlocal" and nested_in_caller:
                            continue
                        own[tag] = (
                            detail,
                            (f"{target[0]}.{target[1]}",) + chain,
                        )
                        changed = True
        self.effect_iterations = rounds
        return facts

    # -- return-dimension fixpoint (REP014-017) ------------------------------

    def return_dim(self, module: str, name: str) -> str:
        """Dimension ``module.name`` returns (``unknown`` when unproven)."""
        if self._return_dim_memo is None:
            self._return_dim_memo = self._compute_return_dims()
        resolved = self.resolve(module, name)
        if resolved is None:
            return UNKNOWN
        return self._return_dim_memo.get(resolved, UNKNOWN)

    def eval_dim(self, term: tuple) -> str:
        """Evaluate a phase-1 dimension term against the fixpoint facts."""
        return eval_term(term, self.return_dim)

    def _compute_return_dims(self) -> dict[tuple[str, str], str]:
        """Kleene iteration from all-``unknown`` over return-dim terms.

        The term evaluator is monotone — ``unknown`` absorbs through
        every operator — so a function's fact moves at most once
        (``unknown`` → concrete) and never oscillates; cycles simply
        stay ``unknown``.  The deterministic order (sorted modules,
        definition order within each) makes the round count a pure
        function of the summaries, reproducible across ``--jobs``
        values and cache states.
        """
        dims: dict[tuple[str, str], str] = {}
        order: list[tuple[tuple[str, str], tuple]] = []
        for module in sorted(self._functions):
            for qualname, fn in self._functions[module].items():
                key = (module, qualname)
                dims[key] = UNKNOWN
                term = fn.return_dim_term  # type: ignore[attr-defined]
                if term is not None:
                    order.append((key, term))

        def lookup(mod: str, name: str) -> str:
            resolved = self.resolve(mod, name)
            if resolved is None:
                return UNKNOWN
            return dims.get(resolved, UNKNOWN)

        rounds = 0
        changed = True
        while changed:
            changed = False
            rounds += 1
            for key, term in order:
                value = eval_term(term, lookup)
                if value != dims[key]:
                    dims[key] = value
                    changed = True
        self.unit_iterations = rounds
        return dims

    def unit_mismatches(
        self,
    ) -> list[tuple[ModuleSummary, UnitSite, str, str]]:
        """Every recorded unit site whose operand dimensions clash.

        Evaluated once per run (REP014 and REP017 partition the same
        list); module order is sorted, site order is the deterministic
        phase-1 walk order.
        """
        if self._unit_mismatch_memo is None:
            out: list[tuple[ModuleSummary, UnitSite, str, str]] = []
            for module in sorted(self.modules):
                summary = self.modules[module]
                for site in summary.unit_sites:
                    left = self.eval_dim(site.left)
                    right = self.eval_dim(site.right)
                    if dims_clash(left, right):
                        out.append((summary, site, left, right))
            self._unit_mismatch_memo = out
        return self._unit_mismatch_memo

    def param_expectations(
        self, module: str, name: str
    ) -> tuple[tuple[str, ...], dict[str, str]]:
        """``(positional order, name → expected dim)`` for a callee."""
        fn = self.function(module, name)
        if fn is None:
            return (), {}
        return fn.param_order, dict(fn.param_dims)  # type: ignore[attr-defined]

    # -- caller index (REP010, REP013) ---------------------------------------

    def callers_of(
        self, module: str, name: str
    ) -> list[tuple[tuple[str, str], CallSite]]:
        """Every resolved call site targeting ``module.name``.

        Returns ``((caller module, caller qualname), CallSite)`` pairs;
        the site's ``under_lock`` says whether the call is lexically
        inside a lock context in the caller.
        """
        if self._caller_index is None:
            index: dict[
                tuple[str, str], list[tuple[tuple[str, str], CallSite]]
            ] = {}
            for caller_module in sorted(self._functions):
                for qualname, fn in self._functions[caller_module].items():
                    for call in fn.calls:
                        target = self.resolve(call.module, call.name)
                        if target is None:
                            continue
                        index.setdefault(target, []).append(
                            ((caller_module, qualname), call)
                        )
            self._caller_index = index
        resolved = self.resolve(module, name)
        if resolved is None:
            return []
        return self._caller_index.get(resolved, [])

    # -- registry reachability (REP009) --------------------------------------

    def reachable_from(self, root: str) -> set[str]:
        """Modules reachable from ``root`` over project import edges."""
        if root not in self.modules:
            return set()
        seen = {root}
        frontier = [root]
        while frontier:
            module = frontier.pop()
            for dep in self.import_edges.get(module, ()):
                if dep not in seen:
                    seen.add(dep)
                    frontier.append(dep)
        return seen

    # -- import-graph queries (incremental cache, pre-commit mode) -----------

    def importers_of(self, module: str) -> set[str]:
        """Transitive closure of modules that import ``module``."""
        reverse: dict[str, list[str]] = {}
        for src, deps in self.import_edges.items():
            for dep in deps:
                reverse.setdefault(dep, []).append(src)
        seen: set[str] = set()
        frontier = [module]
        while frontier:
            cur = frontier.pop()
            for importer in reverse.get(cur, ()):
                if importer not in seen:
                    seen.add(importer)
                    frontier.append(importer)
        return seen
