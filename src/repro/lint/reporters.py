"""Render a :class:`LintResult` as text, JSON, SARIF 2.1.0, or GitHub
workflow commands (``::error`` annotations on the PR diff)."""

from __future__ import annotations

import hashlib
import json

from .engine import LintResult
from .registry import all_rules

__all__ = [
    "render",
    "render_text",
    "render_json",
    "render_sarif",
    "render_github",
    "FORMATS",
]

_SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)
_TOOL_NAME = "repro-lint"
_TOOL_VERSION = "1.0.0"
_INFO_URI = "https://github.com/repro/repro/blob/main/docs/lint.md"


def render_text(result: LintResult, *, show_unused: bool = False) -> str:
    lines: list[str] = []
    for path, message in result.parse_errors:
        lines.append(f"{path}: parse error: {message}")
    for finding in result.findings:
        lines.append(finding.render())
    if show_unused:
        for supp in result.unused_suppressions:
            lines.append(supp.render())
        for entry in result.stale_baseline:
            lines.append(entry.render())
    summary = (
        f"{len(result.findings)} finding(s) in {result.files} file(s)"
        f" ({result.suppressed} suppressed, {result.baselined} baselined"
    )
    if result.stale_baseline:
        summary += f", {len(result.stale_baseline)} stale baseline entr(y/ies)"
    if result.unused_suppressions:
        summary += f", {len(result.unused_suppressions)} unused noqa(s)"
    summary += ")"
    lines.append(summary)
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    payload = {
        "files": result.files,
        "findings": [f.as_dict() for f in result.findings],
        "suppressed": result.suppressed,
        "baselined": result.baselined,
        "unused_suppressions": [
            {
                "path": s.path,
                "line": s.line,
                "codes": list(s.codes) if s.codes else None,
                "file_level": s.file_level,
            }
            for s in result.unused_suppressions
        ],
        "stale_baseline": [e.as_dict() for e in result.stale_baseline],
        "parse_errors": [
            {"path": p, "message": m} for p, m in result.parse_errors
        ],
        "stats": result.stats.as_dict(),
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def _partial_fingerprint(finding) -> str:
    """Stable line-drift-surviving identity for SARIF result matching.

    Built from the same ``(path, rule, snippet)`` triple the baseline
    uses, so GitHub code scanning keeps tracking a finding across
    unrelated edits that shift its line number — and re-opens it the
    moment the offending line itself changes.
    """
    digest = hashlib.sha256(
        "|".join(finding.fingerprint).encode("utf-8")
    ).hexdigest()
    return digest[:20]


def render_sarif(result: LintResult) -> str:
    """SARIF 2.1.0 for GitHub code scanning upload."""
    rules = list(all_rules().values())
    rule_index = {rule.id: i for i, rule in enumerate(rules)}
    results = []
    for finding in result.findings:
        results.append(
            {
                "ruleId": finding.rule,
                "ruleIndex": rule_index.get(finding.rule, -1),
                "level": "error",
                "message": {"text": finding.message},
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {
                                "uri": finding.path,
                                "uriBaseId": "%SRCROOT%",
                            },
                            "region": {
                                "startLine": finding.line,
                                "endLine": finding.last_line,
                                # Finding.col is already 1-based — the
                                # SARIF contract, no conversion
                                "startColumn": finding.col,
                            },
                        }
                    }
                ],
                "partialFingerprints": {
                    "reproLintFingerprint/v1": _partial_fingerprint(finding)
                },
            }
        )
    document = {
        "$schema": _SARIF_SCHEMA,
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": _TOOL_NAME,
                        "version": _TOOL_VERSION,
                        "informationUri": _INFO_URI,
                        "rules": [
                            {
                                "id": rule.id,
                                "name": rule.name,
                                "shortDescription": {"text": rule.summary},
                                "fullDescription": {"text": rule.rationale},
                                "defaultConfiguration": {"level": "error"},
                                "helpUri": f"{_INFO_URI}#{rule.id.lower()}",
                            }
                            for rule in rules
                        ],
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(document, indent=2)


def _gh_escape_data(value: str) -> str:
    """Escape a workflow-command message (the part after ``::``)."""
    return value.replace("%", "%25").replace("\r", "%0D").replace("\n", "%0A")


def _gh_escape_property(value: str) -> str:
    """Escape a workflow-command property value (``file=``, ``title=``)."""
    return (
        _gh_escape_data(value).replace(":", "%3A").replace(",", "%2C")
    )


def render_github(result: LintResult) -> str:
    """GitHub Actions ``::error`` workflow commands, one per finding.

    Printed to an Actions job log these become inline annotations on
    the pull-request diff — no SARIF upload round-trip needed.  The
    final summary line is plain text, which Actions passes through.
    """
    lines: list[str] = []
    for path, message in result.parse_errors:
        lines.append(
            f"::error file={_gh_escape_property(path)}::"
            + _gh_escape_data(f"parse error: {message}")
        )
    for finding in result.findings:
        props = (
            f"file={_gh_escape_property(finding.path)}"
            f",line={finding.line}"
            f",endLine={finding.last_line}"
            f",col={finding.col}"
            f",title={_gh_escape_property(finding.rule)}"
        )
        lines.append(
            f"::error {props}::"
            + _gh_escape_data(f"[{finding.rule}] {finding.message}")
        )
    lines.append(
        f"{len(result.findings)} finding(s) in {result.files} file(s)"
    )
    return "\n".join(lines)


FORMATS = {
    "text": render_text,
    "json": lambda result, **_: render_json(result),
    "sarif": lambda result, **_: render_sarif(result),
    "github": lambda result, **_: render_github(result),
}


def render(result: LintResult, fmt: str, *, show_unused: bool = False) -> str:
    try:
        renderer = FORMATS[fmt]
    except KeyError:
        raise ValueError(f"unknown lint format {fmt!r}") from None
    return renderer(result, show_unused=show_unused)
