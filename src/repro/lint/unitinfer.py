"""Quantity-dimension abstract domain for the lint rules (REP014-017).

Every theorem this repo reproduces is arithmetic over typed physical
quantities: **work** (``wcet`` on a unit-speed machine), **time**
(``period``, ``deadline``, QPA test points), **speed** (work/time) and
**rate** (also work/time: utilization and density), plus dimensionless
scalars.  The worst shipped bug in this repo's history — the pre-PR-8
``dbf()`` boundary test — was a dimension-discipline failure: an
absolute ``EPS`` applied to time-scale values near ``1e12``.

This module defines the abstract domain those rules interpret over:

* **dimensions** as named points over ``(work, time)`` exponent
  vectors — ``work=(1,0)``, ``time=(0,1)``, ``speed=rate=(1,-1)``,
  ``dimensionless=(0,0)`` — so multiplication/division is exponent
  arithmetic (``time * rate -> work``, ``work / speed -> time``,
  ``rate / speed -> dimensionless``) and addition/comparison demands
  matching vectors.  ``speed`` and ``rate`` are distinct *flavors* of
  the same vector: comparing a task-set utilization against a machine
  speed is the core feasibility test and must never be flagged;
* **dimension terms** — small picklable tuple trees built per function
  in phase 1.  A term either folds to a concrete dimension locally or
  records ``("call", module, name)`` leaves that phase 2 resolves over
  the project call graph (:meth:`ProjectGraph.eval_dim`);
* :class:`UnitInference` — a scope-aware forward pass (the shape of
  :class:`~repro.lint.typeinfer.TypeInference`) binding a dimension
  term to every name.  Seeding is heuristic: domain-model attribute
  names (``wcet``, ``period``, ``speed``, ...), parameter names
  (``t``, ``horizon``, ``u``, ...), ``int`` annotations (counts are
  dimensionless) and numeric literals.  Assigned locals trust the
  environment *strictly* — a local named ``t`` that holds a Neumaier
  partial sum must not inherit the ``time`` heuristic.

The pass is conservative by design: anything it cannot classify is
``unknown``, and ``unknown`` silences every rule.  False negatives are
the price of near-zero false positives.
"""

from __future__ import annotations

import ast
from typing import Callable, Final, Iterable

__all__ = [
    "WORK",
    "TIME",
    "SPEED",
    "RATE",
    "DIMENSIONLESS",
    "UNKNOWN",
    "CONFLICT",
    "SCALED_DIMS",
    "DIM_VECTORS",
    "DimTerm",
    "dim_mul",
    "dim_div",
    "dim_join",
    "dims_clash",
    "term_mul",
    "term_div",
    "term_join",
    "term_has_call",
    "eval_term",
    "is_bare_epsilon_literal",
    "param_dim_for",
    "UnitInference",
]

WORK: Final = "work"
TIME: Final = "time"
SPEED: Final = "speed"
RATE: Final = "rate"
DIMENSIONLESS: Final = "dimensionless"
UNKNOWN: Final = "unknown"
CONFLICT: Final = "conflict"

#: dimensions that carry a physical scale (everything the mismatch
#: rules can actually clash)
SCALED_DIMS: Final[frozenset[str]] = frozenset({WORK, TIME, SPEED, RATE})

#: ``(work exponent, time exponent)`` per concrete dimension
DIM_VECTORS: Final[dict[str, tuple[int, int]]] = {
    WORK: (1, 0),
    TIME: (0, 1),
    SPEED: (1, -1),
    RATE: (1, -1),
    DIMENSIONLESS: (0, 0),
}

#: vector → preferred dimension name for product/quotient results;
#: ``(1, -1)`` reads as ``rate`` (work per time) unless a ``speed``
#: operand forces the flavor
_VECTOR_DIMS: Final[dict[tuple[int, int], str]] = {
    (1, 0): WORK,
    (0, 1): TIME,
    (1, -1): RATE,
    (0, 0): DIMENSIONLESS,
}

#: a dimension term: ``("dim", name)``, ``("call", module, qualname)``,
#: ``("mul", a, b)``, ``("div", a, b)`` or ``("join", t1, t2, ...)``
DimTerm = tuple  # recursive tuple trees; kept loose for pickling


# ---------------------------------------------------------------------------
# dimension algebra
# ---------------------------------------------------------------------------


def _flavored(vector: tuple[int, int], a: str, b: str) -> str:
    """Dimension name for a product/quotient result vector."""
    if vector == (1, -1) and SPEED in (a, b):
        # speed begets speed: `platform.total_speed * share` stays a
        # speed, never a rate
        return SPEED
    name = _VECTOR_DIMS.get(vector)
    return name if name is not None else UNKNOWN


def dim_mul(a: str, b: str) -> str:
    """Dimension of ``a * b``; ``unknown`` absorbs, conflicts degrade."""
    if a in (UNKNOWN, CONFLICT) or b in (UNKNOWN, CONFLICT):
        return UNKNOWN
    va, vb = DIM_VECTORS[a], DIM_VECTORS[b]
    return _flavored((va[0] + vb[0], va[1] + vb[1]), a, b)


def dim_div(a: str, b: str) -> str:
    """Dimension of ``a / b``: ``work/time -> rate``, ``work/speed -> time``."""
    if a in (UNKNOWN, CONFLICT) or b in (UNKNOWN, CONFLICT):
        return UNKNOWN
    va, vb = DIM_VECTORS[a], DIM_VECTORS[b]
    vector = (va[0] - vb[0], va[1] - vb[1])
    if vector == (1, -1):
        # dividing by time yields a rate; splitting a speed keeps the
        # speed flavor (`fastest_speed / heterogeneity_ratio`)
        return SPEED if a == SPEED else RATE
    name = _VECTOR_DIMS.get(vector)
    return name if name is not None else UNKNOWN


def dim_join(dims: Iterable[str]) -> str:
    """Dimension shared by added/compared/merged operands.

    ``dimensionless`` is the identity (accumulators start at ``0.0``,
    epsilons scale by ``1.0``); ``unknown`` absorbs; concretely mixed
    vectors degrade to ``unknown`` — the *operator sites* judge
    mismatches, propagation never manufactures a conflict.
    """
    result = ""
    flavor = ""
    for dim in dims:
        if dim == DIMENSIONLESS:
            continue
        if dim in (UNKNOWN, CONFLICT):
            return UNKNOWN
        if not result:
            result, flavor = dim, dim
            continue
        if DIM_VECTORS[dim] != DIM_VECTORS[result]:
            return UNKNOWN
        if dim != flavor:
            # speed joined with rate: same vector, keep the first flavor
            continue
    return result or DIMENSIONLESS


def dims_clash(a: str, b: str) -> bool:
    """True when two *concrete scaled* dimensions cannot mix."""
    if a not in SCALED_DIMS or b not in SCALED_DIMS:
        return False
    return DIM_VECTORS[a] != DIM_VECTORS[b]


# ---------------------------------------------------------------------------
# dimension terms (phase 1 → phase 2 hand-off)
# ---------------------------------------------------------------------------

_DIM_UNKNOWN: Final[DimTerm] = ("dim", UNKNOWN)
_DIM_DIMENSIONLESS: Final[DimTerm] = ("dim", DIMENSIONLESS)


def _fold2(tag: str, a: DimTerm, b: DimTerm, op: Callable[[str, str], str]) -> DimTerm:
    if a[0] == "dim" and b[0] == "dim":
        return ("dim", op(a[1], b[1]))
    return (tag, a, b)


def term_mul(a: DimTerm, b: DimTerm) -> DimTerm:
    return _fold2("mul", a, b, dim_mul)


def term_div(a: DimTerm, b: DimTerm) -> DimTerm:
    return _fold2("div", a, b, dim_div)


def term_join(terms: Iterable[DimTerm]) -> DimTerm:
    parts = tuple(terms)
    if not parts:
        return _DIM_UNKNOWN
    if all(t[0] == "dim" for t in parts):
        return ("dim", dim_join(t[1] for t in parts))
    return ("join",) + parts


def term_has_call(term: DimTerm) -> bool:
    """Does this term depend on any project function's return dimension?"""
    tag = term[0]
    if tag == "call":
        return True
    if tag == "dim":
        return False
    return any(term_has_call(sub) for sub in term[1:])


def eval_term(term: DimTerm, return_dim: Callable[[str, str], str]) -> str:
    """Evaluate a term to a concrete dimension name.

    ``return_dim(module, name)`` supplies the current return-dimension
    fact for project calls — the phase-2 fixpoint's read channel.
    Monotone in its inputs (``unknown`` absorbs everywhere), which is
    what lets the Kleene iteration in :class:`ProjectGraph` terminate.
    """
    tag = term[0]
    if tag == "dim":
        return term[1]
    if tag == "call":
        return return_dim(term[1], term[2])
    if tag == "mul":
        return dim_mul(
            eval_term(term[1], return_dim), eval_term(term[2], return_dim)
        )
    if tag == "div":
        return dim_div(
            eval_term(term[1], return_dim), eval_term(term[2], return_dim)
        )
    if tag == "join":
        return dim_join(eval_term(sub, return_dim) for sub in term[1:])
    return UNKNOWN


# ---------------------------------------------------------------------------
# heuristic seed tables
# ---------------------------------------------------------------------------

#: domain-model attribute names with a known dimension — applied to any
#: ``x.<attr>`` regardless of receiver (mirrors typeinfer.FLOAT_ATTRS)
DIM_ATTRS: Final[dict[str, str]] = {
    "wcet": WORK,
    "wcets": WORK,
    "period": TIME,
    "periods": TIME,
    "deadline": TIME,
    "deadlines": TIME,
    "d_min": TIME,
    "d_max": TIME,
    "speed": SPEED,
    "speeds": SPEED,
    "total_speed": SPEED,
    "fastest_speed": SPEED,
    "slowest_speed": SPEED,
    "utilization": RATE,
    "utilizations": RATE,
    "total_utilization": RATE,
    "max_utilization": RATE,
    "total_u": RATE,
    "density": RATE,
    "densities": RATE,
    "total_density": RATE,
    "heterogeneity_ratio": DIMENSIONLESS,
    "hit_ratio": DIMENSIONLESS,
}

#: parameter-name heuristics, bound once at scope construction; a local
#: *assignment* to one of these names replaces the heuristic entirely
PARAM_DIMS: Final[dict[str, str]] = {
    "t": TIME,
    "horizon": TIME,
    "deadline": TIME,
    "deadlines": TIME,
    "period": TIME,
    "periods": TIME,
    "interval": TIME,
    "due": TIME,
    "dt": TIME,
    "wcet": WORK,
    "wcets": WORK,
    "work": WORK,
    "demand": WORK,
    "speed": SPEED,
    "speeds": SPEED,
    "u": RATE,
    "util": RATE,
    "utilization": RATE,
    "utilizations": RATE,
    "density": RATE,
    "eps": DIMENSIONLESS,
    "alpha": DIMENSIONLESS,
    "n": DIMENSIONLESS,
    "m": DIMENSIONLESS,
}

#: free names (module constants, often imported) with known dimension
FREE_NAME_DIMS: Final[dict[str, str]] = {
    "EPS": DIMENSIONLESS,
    "LP_TOL": DIMENSIONLESS,
    "SQRT2": DIMENSIONLESS,
    "LN2": DIMENSIONLESS,
    "HAN_ZHAO_SPEEDUP": DIMENSIONLESS,
}

#: calls whose result joins the dimensions of their positional args.
#: ``tol_floor`` is the scale-aware floor helper: dimension-preserving
#: by construction.  Matched on the bare name or last attribute segment
#: (``math.floor``, ``np.maximum``).
_PASSTHROUGH_FUNCS: Final[frozenset[str]] = frozenset(
    {
        "abs",
        "fabs",
        "float",
        "floor",
        "ceil",
        "fsum",
        "max",
        "maximum",
        "min",
        "minimum",
        "round",
        "sorted",
        "sum",
        "tol_floor",
        "array",
        "asarray",
    }
)

#: calls whose result is a pure count/flag
_DIMENSIONLESS_FUNCS: Final[frozenset[str]] = frozenset({"len", "range", "bool"})


def _annotation_dimensionless(ann: ast.expr | None) -> bool:
    """``int``-annotated parameters are counts, not quantities."""
    return isinstance(ann, ast.Name) and ann.id == "int"


def param_dim_for(arg: ast.arg) -> str | None:
    """Heuristic dimension of one parameter, or ``None``."""
    dim = PARAM_DIMS.get(arg.arg)
    if dim is not None:
        return dim
    if _annotation_dimensionless(arg.annotation):
        return DIMENSIONLESS
    return None


def is_bare_epsilon_literal(node: ast.expr) -> bool:
    """A float literal small enough to be an absolute tolerance."""
    return (
        isinstance(node, ast.Constant)
        and isinstance(node.value, float)
        and 0.0 < abs(node.value) <= 1e-3
    )


def _callee_name(call: ast.Call) -> str | None:
    """Bare name or last attribute segment of the called function."""
    func = call.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


# ---------------------------------------------------------------------------
# the per-module inference pass
# ---------------------------------------------------------------------------


class UnitInference:
    """Scope-aware dimension-term inference for one parsed module.

    Build once per file (phase 1); query with :meth:`term_of`.  Needs
    parent links (``_repro_parent``) on the tree, and the builder's
    ``resolve_call`` to turn project calls into ``("call", ...)``
    leaves phase 2 can evaluate.
    """

    def __init__(
        self,
        tree: ast.Module,
        resolve_call: Callable[[ast.Call], tuple[str, str] | None],
    ) -> None:
        self._resolve_call = resolve_call
        self._envs: dict[ast.AST, dict[str, DimTerm]] = {}
        self._build_scope(tree, parent_env=None)

    # -- scope construction --------------------------------------------------

    def _build_scope(
        self, scope: ast.AST, parent_env: dict[str, DimTerm] | None
    ) -> None:
        env: dict[str, DimTerm] = dict(parent_env or {})
        self._envs[scope] = env
        args = getattr(scope, "args", None)
        if args is not None:
            for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
                dim = param_dim_for(arg)
                # strict: a parameter with no heuristic is unknown, and
                # so is any local until assigned
                env[arg.arg] = ("dim", dim) if dim is not None else _DIM_UNKNOWN
        body = getattr(scope, "body", [])
        if isinstance(body, list):
            self._walk_statements(body, env)

    def _walk_statements(
        self, stmts: list[ast.stmt], env: dict[str, DimTerm]
    ) -> None:
        for stmt in stmts:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._build_scope(stmt, parent_env=env)
                continue
            if isinstance(stmt, ast.ClassDef):
                self._walk_statements(stmt.body, dict(env))
                continue
            self._bind_expressions(stmt, env)
            if isinstance(stmt, ast.Assign):
                term = self.term_in_env(stmt.value, env)
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        env[target.id] = term
            elif isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name
            ):
                if _annotation_dimensionless(stmt.annotation):
                    env[stmt.target.id] = _DIM_DIMENSIONLESS
                elif stmt.value is not None:
                    env[stmt.target.id] = self.term_in_env(stmt.value, env)
            elif isinstance(stmt, ast.AugAssign) and isinstance(
                stmt.target, ast.Name
            ):
                old = env.get(stmt.target.id, _DIM_UNKNOWN)
                value = self.term_in_env(stmt.value, env)
                if isinstance(stmt.op, (ast.Mult,)):
                    env[stmt.target.id] = term_mul(old, value)
                elif isinstance(stmt.op, (ast.Div, ast.FloorDiv)):
                    env[stmt.target.id] = term_div(old, value)
                elif isinstance(stmt.op, (ast.Add, ast.Sub)):
                    env[stmt.target.id] = term_join((old, value))
                else:
                    env[stmt.target.id] = _DIM_UNKNOWN
            elif isinstance(stmt, ast.For) and isinstance(
                stmt.target, ast.Name
            ):
                # elements of a dimension-carrying container share its
                # dimension (`for d in task.deadlines`)
                env[stmt.target.id] = self.term_in_env(stmt.iter, env)
            for field_name in ("body", "orelse", "finalbody"):
                inner = getattr(stmt, field_name, None)
                if isinstance(inner, list):
                    self._walk_statements(
                        [s for s in inner if isinstance(s, ast.stmt)], env
                    )
            handlers = getattr(stmt, "handlers", None)
            if handlers:
                for handler in handlers:
                    self._walk_statements(handler.body, env)

    def _bind_expressions(
        self, stmt: ast.stmt, env: dict[str, DimTerm]
    ) -> None:
        for node in ast.walk(stmt):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue  # its own scope
            if isinstance(node, ast.NamedExpr) and isinstance(
                node.target, ast.Name
            ):
                env[node.target.id] = self.term_in_env(node.value, env)
            elif isinstance(
                node,
                (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp),
            ):
                comp_env = dict(env)
                for gen in node.generators:
                    if isinstance(gen.target, ast.Name):
                        comp_env[gen.target.id] = self.term_in_env(
                            gen.iter, comp_env
                        )
                self._envs[node] = comp_env

    # -- queries -------------------------------------------------------------

    def env_for(self, node: ast.AST) -> dict[str, DimTerm]:
        cur: ast.AST | None = node
        while cur is not None:
            if cur in self._envs:
                return self._envs[cur]
            cur = getattr(cur, "_repro_parent", None)
        return {}

    def term_of(self, node: ast.expr) -> DimTerm:
        return self.term_in_env(node, self.env_for(node))

    def dim_of(self, node: ast.expr) -> str:
        """Locally foldable dimension (``unknown`` when calls intrude)."""
        term = self.term_of(node)
        return term[1] if term[0] == "dim" else UNKNOWN

    # -- expression inference ------------------------------------------------

    def term_in_env(
        self, node: ast.expr, env: dict[str, DimTerm]
    ) -> DimTerm:  # noqa: C901 - one dispatch table, clearer flat
        if isinstance(node, ast.Constant):
            if isinstance(node.value, (int, float)) and not isinstance(
                node.value, bool
            ):
                return _DIM_DIMENSIONLESS
            return _DIM_UNKNOWN
        if isinstance(node, ast.Name):
            if node.id in env:
                return env[node.id]
            dim = FREE_NAME_DIMS.get(node.id)
            return ("dim", dim) if dim is not None else _DIM_UNKNOWN
        if isinstance(node, ast.Attribute):
            dim = DIM_ATTRS.get(node.attr)
            return ("dim", dim) if dim is not None else _DIM_UNKNOWN
        if isinstance(node, ast.UnaryOp):
            if isinstance(node.op, ast.Not):
                return _DIM_UNKNOWN
            return self.term_in_env(node.operand, env)
        if isinstance(node, ast.BinOp):
            left = self.term_in_env(node.left, env)
            right = self.term_in_env(node.right, env)
            if isinstance(node.op, ast.Mult):
                return term_mul(left, right)
            if isinstance(node.op, (ast.Div, ast.FloorDiv)):
                return term_div(left, right)
            if isinstance(node.op, (ast.Add, ast.Sub, ast.Mod)):
                return term_join((left, right))
            return _DIM_UNKNOWN
        if isinstance(node, ast.NamedExpr):
            return self.term_in_env(node.value, env)
        if isinstance(node, ast.IfExp):
            return term_join(
                (
                    self.term_in_env(node.body, env),
                    self.term_in_env(node.orelse, env),
                )
            )
        if isinstance(node, (ast.List, ast.Tuple, ast.Set)):
            if not node.elts:
                return _DIM_UNKNOWN
            return term_join(
                self.term_in_env(e, env) for e in node.elts
            )
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            return self.term_in_env(node.elt, self._envs.get(node, env))
        if isinstance(node, ast.Starred):
            return self.term_in_env(node.value, env)
        if isinstance(node, ast.Subscript):
            # containers carry their element dimension; slicing keeps it
            return self.term_in_env(node.value, env)
        if isinstance(node, ast.Call):
            return self._call_term(node, env)
        return _DIM_UNKNOWN

    def _call_term(self, node: ast.Call, env: dict[str, DimTerm]) -> DimTerm:
        name = _callee_name(node)
        if name in _DIMENSIONLESS_FUNCS:
            return _DIM_DIMENSIONLESS
        if name in _PASSTHROUGH_FUNCS:
            args = node.args
            if not args:
                return _DIM_UNKNOWN
            return term_join(self.term_in_env(a, env) for a in args)
        if name == "where" and len(node.args) == 3:
            # np.where(cond, a, b): the condition carries no dimension
            return term_join(
                self.term_in_env(a, env) for a in node.args[1:]
            )
        resolved = self._resolve_call(node)
        if resolved is not None:
            return ("call", resolved[0], resolved[1])
        return _DIM_UNKNOWN
