"""Incremental analysis cache for the lint engine.

Keyed three ways, so a stale result can never surface:

* the **analyzer digest** — a hash of every source file in the
  ``repro.lint`` package.  Any change to the analyzer itself (a rule
  tweak, a typeinfer fix) discards the whole cache;
* the **content hash** of each analyzed module — an edited file is
  re-analyzed;
* the **import graph** — an unchanged module whose (transitive) project
  dependency changed is *invalidated* too, so interprocedural facts
  that flowed into its analysis can never go stale.

The cached payload per module is phase 1's complete output (raw
findings, suppression list, module summary), which means a fully warm
run re-does only phase 2 — and phase 2 is a pure function of the
summaries, so warm and cold runs are bit-identical by construction.

Cache corruption (truncated file, pickle drift across Python versions)
degrades to a cold start, never to an error.
"""

from __future__ import annotations

import hashlib
import pickle
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from .summaries import module_name_for_path

__all__ = ["LintCache", "analyzer_digest", "content_hash"]

CACHE_VERSION = 1


def content_hash(source: str) -> str:
    """Stable content address of one module's source text."""
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


_ANALYZER_DIGEST: str | None = None


def analyzer_digest() -> str:
    """Hash of the ``repro.lint`` package sources (cache master key)."""
    global _ANALYZER_DIGEST
    if _ANALYZER_DIGEST is None:
        package_dir = Path(__file__).resolve().parent
        hasher = hashlib.sha256()
        for path in sorted(package_dir.rglob("*.py")):
            hasher.update(path.relative_to(package_dir).as_posix().encode())
            hasher.update(b"\x00")
            hasher.update(path.read_bytes())
        # the memoized IO is the *point*: the analyzer's own sources
        # are immutable within one process, so reading them once and
        # caching the digest is deterministic for the process lifetime
        _ANALYZER_DIGEST = hasher.hexdigest()  # repro: noqa[REP011]
    return _ANALYZER_DIGEST


@dataclass
class _Entry:
    sha: str
    #: absolute module names the module imports (from its summary)
    imports: tuple[str, ...]
    #: phase 1's full output for the module (engine-defined, picklable)
    payload: Any


class LintCache:
    """Load/validate/update the on-disk cache for one lint run."""

    def __init__(self, path: Path, config_key: str = "") -> None:
        self.path = path
        #: rule-selection fingerprint: cached findings depend on which
        #: rules ran, so a selection change is a cold start too
        self.config_key = config_key
        self._entries: dict[str, _Entry] = {}
        self._load()

    def _load(self) -> None:
        try:
            with open(self.path, "rb") as fh:
                data = pickle.load(fh)
            if (
                isinstance(data, dict)
                and data.get("version") == CACHE_VERSION
                and data.get("analyzer") == analyzer_digest()
                and data.get("config") == self.config_key
            ):
                self._entries = data["entries"]
        except FileNotFoundError:
            pass
        except Exception:
            # corrupt/foreign cache: cold start, never an error
            self._entries = {}

    # -- validation -----------------------------------------------------------

    def partition(
        self, hashes: dict[str, str]
    ) -> tuple[set[str], set[str]]:
        """Split the current file set into ``(valid, invalidated)`` paths.

        ``hashes`` maps every repo-relative path in this run to its
        content hash.  A path is *valid* when its own hash matches the
        cached entry **and** every project module it imports is valid —
        the transitive-invalidation fixpoint.  *Invalidated* paths are
        the interesting diagnostic: their own content is unchanged but
        a dependency's change forces re-analysis.  Paths absent from
        the cache (or edited) are in neither set.
        """
        module_to_path = {
            module_name_for_path(path)[0]: path for path in hashes
        }
        memo: dict[str, bool] = {}

        def valid(path: str, stack: frozenset[str]) -> bool:
            if path in memo:
                return memo[path]
            if path in stack:
                return True  # import cycle of unchanged files is fine
            entry = self._entries.get(path)
            if entry is None or entry.sha != hashes.get(path):
                memo[path] = False
                return False
            deeper = stack | {path}
            for module in entry.imports:
                dep_path = module_to_path.get(module)
                if dep_path is not None and dep_path != path:
                    if not valid(dep_path, deeper):
                        memo[path] = False
                        return False
            memo[path] = True
            return True

        valid_paths: set[str] = set()
        invalidated: set[str] = set()
        for path in hashes:
            if valid(path, frozenset()):
                valid_paths.add(path)
            elif (
                path in self._entries
                and self._entries[path].sha == hashes[path]
            ):
                invalidated.add(path)
        return valid_paths, invalidated

    # -- access ----------------------------------------------------------------

    def payload(self, path: str) -> Any:
        return self._entries[path].payload

    def store(
        self, path: str, sha: str, imports: tuple[str, ...], payload: Any
    ) -> None:
        self._entries[path] = _Entry(sha=sha, imports=imports, payload=payload)

    def prune(self, keep: set[str]) -> None:
        """Drop entries for files no longer in the analyzed set."""
        for path in list(self._entries):
            if path not in keep:
                del self._entries[path]

    def save(self) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        data = {
            "version": CACHE_VERSION,
            "analyzer": analyzer_digest(),
            "config": self.config_key,
            "entries": self._entries,
        }
        tmp = self.path.with_suffix(self.path.suffix + ".tmp")
        with open(tmp, "wb") as fh:
            pickle.dump(data, fh, protocol=pickle.HIGHEST_PROTOCOL)
        tmp.replace(self.path)
