"""Per-module summaries — the facts phase 2 of the analyzer consumes.

Phase 1 (per file, parallelizable) reduces every module to a
:class:`ModuleSummary` of plain picklable data: which project modules it
imports, which functions it defines and what they return
("produces-float", "derives-from-trial-seed", "holds-lock"), plus the
*pending sites* the interprocedural rules will judge once every summary
is available — bare comparisons whose operand is a call into another
module (REP007), RNG constructions whose seed argument's provenance
crosses function boundaries (REP008), per-function **effect sets** with
call/mutation sites (REP010-012), and capture sites where callables or
globals cross a process boundary (REP013).

Everything here is deliberately AST-free and content-addressable: the
summaries travel through the process pool, live in the incremental
cache, and fully determine phase 2 — two runs that produce the same
summaries produce the same interprocedural findings.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Iterator

from .registry import FileContext
from .typeinfer import FLOAT
from .unitinfer import (
    DIMENSIONLESS,
    SCALED_DIMS,
    TIME,
    UNKNOWN,
    WORK,
    UnitInference,
    dims_clash,
    is_bare_epsilon_literal,
    param_dim_for,
    term_has_call,
    term_join,
)

__all__ = [
    "SeedProv",
    "FunctionSummary",
    "ComparisonSite",
    "RNGSite",
    "EffectSite",
    "CallSite",
    "MutationSite",
    "CaptureSite",
    "UnitSite",
    "EpsSite",
    "UnitCallSite",
    "ModuleSummary",
    "MUTATOR_METHODS",
    "lock_helper_names",
    "mentions_lock",
    "module_name_for_path",
    "self_private_attr",
    "with_item_locked",
    "build_module_summary",
]

#: names whose value is trusted seed material wherever they appear
_SEED_NAME_RE = re.compile(r"(^|_)(seed|seeds|entropy)(_|$)")

#: modules whose call results poison a seed derivation (environment-,
#: time-, or hash-dependent values)
_TAINT_MODULES = frozenset(
    {"time", "datetime", "os", "uuid", "secrets", "random", "socket", "platform"}
)

#: builtins that poison a seed derivation; ``hash`` is the historical
#: bug (PYTHONHASHSEED-dependent), ``id`` varies per process
_TAINT_BUILTINS = frozenset({"hash", "id"})

#: builtins that merely pass provenance through
_PASSTHROUGH_BUILTINS = frozenset({"int", "abs", "min", "max", "sum", "round"})

#: methods on SeedSequence/Generator objects that stay in the blessed
#: derivation chain
_DERIVING_METHODS = frozenset({"generate_state", "spawn", "integers"})

#: the RNG constructors REP008 audits (REP002 already covers the
#: zero-argument forms)
RNG_CONSTRUCTORS = frozenset({"default_rng", "Generator", "PCG64", "SeedSequence"})

_FLAGGED_CMP_OPS = {ast.LtE: "<=", ast.GtE: ">=", ast.Eq: "=="}

#: comparison operators whose operands must share a dimension (REP014/
#: REP017 sites; membership/identity tests carry no dimension)
_UNIT_CMP_OPS = {
    ast.Lt: "<",
    ast.LtE: "<=",
    ast.Gt: ">",
    ast.GtE: ">=",
    ast.Eq: "==",
    ast.NotEq: "!=",
}

#: names that denote an epsilon/tolerance constant (REP015 input)
_EPS_NAME_RE = re.compile(r"(^|_)(eps|epsilon)($|_)", re.IGNORECASE)

#: floor-like calls: a bare epsilon inside one converts a boundary test
#: into a job-count change (the historical ``dbf()`` bug shape);
#: ``tol_floor`` is deliberately absent — it *is* the scale-aware fix
_FLOOR_LIKE_FUNCS = frozenset({"floor", "ceil", "trunc", "int", "round"})

#: module-global names that denote a memo/cache/scratch structure —
#: writes to them are bookkeeping (``memo-write``), not impurity, as
#: long as nothing *else* impure feeds the cached value
_MEMO_NAME_RE = re.compile(
    r"cache|memo|profil|scratch|buf|digest|hits|miss|evict|pool|seen", re.I
)

#: mutating container methods (shared with REP006/REP010)
MUTATOR_METHODS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "add",
        "discard",
        "remove",
        "pop",
        "popitem",
        "clear",
        "update",
        "setdefault",
        "move_to_end",
        "sort",
        "reverse",
        "observe",
    }
)

#: ``time`` module functions that read a clock (effect ``wall-clock``)
_WALL_CLOCK_TIME_FNS = frozenset(
    {
        "time",
        "time_ns",
        "ctime",
        "localtime",
        "gmtime",
        "perf_counter",
        "perf_counter_ns",
        "monotonic",
        "monotonic_ns",
        "process_time",
    }
)

#: Path/file methods that do IO when called on any receiver
_IO_METHODS = frozenset(
    {"read_text", "write_text", "read_bytes", "write_bytes", "open"}
)

#: blocking socket operations (matched when the receiver looks like a
#: socket/connection)
_BLOCKING_SOCKET_METHODS = frozenset(
    {"recv", "recv_into", "sendall", "accept", "connect"}
)

#: blocking waits on a child process
_PROC_WAIT_METHODS = frozenset({"wait", "communicate"})

#: subprocess entry points (effect ``process``, which is also blocking)
_SUBPROCESS_FNS = frozenset({"run", "call", "check_call", "check_output", "Popen"})

#: process fan-out entry points (REP013 capture sites)
_FANOUT_FUNCTIONS = frozenset({"run_trials"})

#: pickle-frame entry points in :mod:`repro.service.protocol`
_PICKLE_FRAME_FUNCTIONS = frozenset({"frame_bytes", "send_frame"})

#: ``threading`` factories whose product must never cross a process
_LOCK_FACTORY_ATTRS = frozenset(
    {"Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore", "Event", "Barrier"}
)


# ---------------------------------------------------------------------------
# lock recognition (shared with REP006/REP010)
# ---------------------------------------------------------------------------


def mentions_lock(node: ast.expr) -> bool:
    """Does the expression reference a lock-looking name/attribute?"""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Attribute) and "lock" in sub.attr.lower():
            return True
        if isinstance(sub, ast.Name) and "lock" in sub.id.lower():
            return True
    return False


def _is_contextmanager_decorator(node: ast.expr) -> bool:
    if isinstance(node, ast.Name):
        return node.id == "contextmanager"
    if isinstance(node, ast.Attribute):
        return node.attr == "contextmanager"
    return False


def lock_helper_names(tree: ast.AST) -> frozenset[str]:
    """Names of ``@contextmanager`` functions whose body enters a lock.

    ``with self._guard():`` where ``_guard`` is such a helper counts as
    holding the lock — REP006's historical blind spot, closed lexically
    for the helper-in-the-same-file case (REP010 handles the rest
    interprocedurally).
    """
    helpers: set[str] = set()
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if not any(
            _is_contextmanager_decorator(d) for d in node.decorator_list
        ):
            continue
        for sub in ast.walk(node):
            if isinstance(sub, (ast.With, ast.AsyncWith)) and any(
                mentions_lock(item.context_expr) for item in sub.items
            ):
                helpers.add(node.name)
                break
    return frozenset(helpers)


def with_item_locked(expr: ast.expr, helpers: frozenset[str]) -> bool:
    """Does one ``with`` item enter a lock (directly or via a helper)?"""
    if mentions_lock(expr):
        return True
    if isinstance(expr, ast.Call):
        func = expr.func
        name = ""
        if isinstance(func, ast.Attribute):
            name = func.attr
        elif isinstance(func, ast.Name):
            name = func.id
        return name in helpers
    return False


def self_private_attr(node: ast.expr) -> str | None:
    """``self._x`` (possibly behind a subscript) → ``_x``."""
    if isinstance(node, ast.Subscript):
        node = node.value
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
        and node.attr.startswith("_")
    ):
        return node.attr
    return None


# ---------------------------------------------------------------------------
# summary records (all plain, hashable, picklable)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SeedProv:
    """Provenance verdict for one expression in the seed lattice.

    ``taint`` and ``unknown`` carry human-readable reasons; ``deps`` are
    ``(module, function)`` calls whose *return* provenance decides the
    verdict (resolved by the project graph's fixpoint).  Combination
    rule: taint dominates, then an explicit seed component blesses the
    mixture (the ``SeedSequence([base_seed, digest, point, rep])``
    pattern), then unresolved deps, then unknown.
    """

    taint: str = ""
    seed: bool = False
    unknown: str = ""
    deps: tuple[tuple[str, str], ...] = ()


#: provenance of an expression that is pure literal / blessed material
_PROV_SEED = SeedProv(seed=True)


def combine_provs(provs: list[SeedProv]) -> SeedProv:
    """Fold the provenance of an expression's components."""
    taint = next((p.taint for p in provs if p.taint), "")
    seed = any(p.seed for p in provs)
    unknown = next((p.unknown for p in provs if p.unknown), "")
    deps: list[tuple[str, str]] = []
    for p in provs:
        for dep in p.deps:
            if dep not in deps:
                deps.append(dep)
    return SeedProv(taint=taint, seed=seed, unknown=unknown, deps=tuple(deps))


@dataclass(frozen=True)
class EffectSite:
    """One observed side effect inside a function body.

    ``tag`` is a point in the effect lattice: ``rng``, ``wall-clock``,
    ``io``, ``blocking``, ``process``, ``lock``, ``mutates-global``,
    ``mutates-param``, ``mutates-nonlocal``, ``memo-write``.  One site
    per tag per function (the first occurrence anchors the finding).
    """

    tag: str
    detail: str
    line: int
    col: int = 0
    end_line: int = 0
    snippet: str = ""


@dataclass(frozen=True)
class CallSite:
    """A statically resolved call inside a function body."""

    module: str
    name: str
    line: int
    col: int
    snippet: str = ""
    #: lexically inside a ``with <lock>`` (or lock-helper) block
    under_lock: bool = False


@dataclass(frozen=True)
class MutationSite:
    """A mutation of shared state: ``self._*`` attr or module global."""

    target: str
    #: ``attr`` (``self._x``) or ``global`` (module-level name)
    kind: str
    detail: str
    line: int
    col: int
    end_line: int = 0
    snippet: str = ""
    under_lock: bool = False


@dataclass(frozen=True)
class CaptureSite:
    """A callable/value crossing a process boundary (REP013 input)."""

    #: ``fanout`` (runner pool) or ``pickle`` (protocol frame)
    kind: str
    line: int
    col: int
    end_line: int = 0
    snippet: str = ""
    #: resolved ``(module, qualname)`` of the fanned-out trial function
    fn_ref: tuple[str, str] | None = None
    #: ``lambda`` when the trial callable cannot be summarized
    local_callable: str = ""
    #: ``(module, global name)`` candidates checked against carriers
    carrier_candidates: tuple[tuple[str, str], ...] = ()


@dataclass(frozen=True)
class UnitSite:
    """An addition/subtraction/comparison whose operands carry units.

    Recorded when both operands are *informative* — a concrete scaled
    dimension or a term depending on a project call's return dimension.
    Phase 2 evaluates both terms and flags the site (REP014/REP017)
    only when two concrete scaled dimensions with different exponent
    vectors meet.
    """

    line: int
    col: int
    end_line: int
    snippet: str
    op_text: str
    #: ``arith`` (``+``/``-``) or ``compare``
    context: str
    #: dimension terms (picklable tuple trees; see unitinfer)
    left: tuple
    right: tuple
    left_display: str = ""
    right_display: str = ""


@dataclass(frozen=True)
class EpsSite:
    """A bare epsilon added/subtracted from a scale-carrying value.

    The pre-PR-8 ``dbf()`` bug class (REP015): an *absolute* tolerance
    next to a ``time``/``work``-dimension expression inside a
    comparison or floor-like call, where the scale-aware ``leq``/
    ``lt``/``tol_floor`` helpers should have been used.
    """

    line: int
    col: int
    end_line: int
    snippet: str
    #: ``compare`` or ``floor``
    context: str
    eps_display: str
    #: dimension term of the non-epsilon operand
    partner: tuple
    partner_display: str = ""
    #: a sub-expression of the partner already carries this scaled
    #: dimension locally (fires without the call graph)
    lineage_dim: str = ""


@dataclass(frozen=True)
class UnitCallSite:
    """A resolved project call with dimension-carrying arguments.

    Phase 2 joins each argument's dimension against the callee's
    parameter expectation (REP016) — the facts live in different
    modules by construction.
    """

    line: int
    col: int
    end_line: int
    snippet: str
    #: locally resolved target (phase 2 follows re-export chains)
    module: str
    name: str
    #: ``(positional index or keyword name, display, dimension term)``
    args: tuple[tuple[str, str, tuple], ...] = ()


@dataclass(frozen=True)
class FunctionSummary:
    """Interprocedural facts about one function or method."""

    #: ``name`` for module functions, ``Class.name`` for methods,
    #: dotted (``outer.inner``) for nested functions
    qualname: str
    #: a return path produces a float (directly inferred or annotated)
    returns_float: bool = False
    #: ``return f(...)`` calls whose return kind decides floatness
    return_call_deps: tuple[tuple[str, str], ...] = ()
    #: provenance of each ``return <expr>`` (all must be seed-derived
    #: for the function to count as a seed deriver)
    return_seed_provs: tuple[SeedProv, ...] = ()
    #: body contains a ``with <...lock...>:`` block (REP010 leans on
    #: this when proving caller-chain lock discipline)
    holds_lock: bool = False
    #: ``async def`` (including async generators) — REP012 scope
    is_async: bool = False
    #: defined directly inside a ``class`` body
    is_method: bool = False
    #: 1-based ``def`` line (REP011 findings anchor here)
    line: int = 0
    #: stripped ``def`` line (fingerprint input)
    snippet: str = ""
    #: memoizing decorator (``functools.lru_cache``/``cache``), or ""
    memoized: str = ""
    #: own (non-transitive) effect sites, one per tag, tag-sorted
    effects: tuple[EffectSite, ...] = ()
    #: statically resolved calls (the effect fixpoint's edges)
    calls: tuple[CallSite, ...] = ()
    #: shared-state mutation sites (REP010 input)
    mutations: tuple[MutationSite, ...] = ()
    #: dimension term joined over every ``return <expr>`` — the unit
    #: fixpoint's per-function unknown; ``None`` when nothing returns
    return_dim_term: tuple | None = None
    #: parameter names in positional order (call-argument mapping)
    param_order: tuple[str, ...] = ()
    #: ``(param name, expected dimension)`` for parameters whose name,
    #: annotation or local usage implies a dimension (REP016 input)
    param_dims: tuple[tuple[str, str], ...] = ()


@dataclass(frozen=True)
class ComparisonSite:
    """A bare comparison with a cross-function operand (REP007 input)."""

    line: int
    col: int
    end_line: int
    snippet: str
    op_text: str
    #: operand descriptors: ``("float", "", "")``, ``("call", mod, fn)``,
    #: or ``("other", "", "")``
    left: tuple[str, str, str]
    right: tuple[str, str, str]


@dataclass(frozen=True)
class RNGSite:
    """An RNG constructed from an explicit argument (REP008 input)."""

    line: int
    col: int
    end_line: int
    snippet: str
    constructor: str
    prov: SeedProv


@dataclass(frozen=True)
class ModuleSummary:
    """Everything phase 2 needs to know about one module."""

    module: str
    path: str
    is_package: bool = False
    #: stripped first source line (fingerprint input for module-level
    #: findings such as REP009)
    first_line: str = ""
    #: absolute module names this module imports (project and external;
    #: the graph filters to project members)
    imports: tuple[str, ...] = ()
    #: ``local name -> (origin module, origin name)`` for from-imports
    symbol_imports: tuple[tuple[str, str, str], ...] = ()
    functions: tuple[FunctionSummary, ...] = ()
    comparisons: tuple[ComparisonSite, ...] = ()
    rng_sites: tuple[RNGSite, ...] = ()
    #: module globals holding locks/sockets/open handles:
    #: ``(name, factory detail)`` — must never cross a process boundary
    global_carriers: tuple[tuple[str, str], ...] = ()
    #: fan-out / pickle-frame sites found anywhere in the module
    capture_sites: tuple[CaptureSite, ...] = ()
    #: unit-bearing arithmetic/comparison sites (REP014/REP017 input)
    unit_sites: tuple[UnitSite, ...] = ()
    #: bare-epsilon sites (REP015 input)
    eps_sites: tuple[EpsSite, ...] = ()
    #: resolved calls with dimension-carrying arguments (REP016 input)
    unit_calls: tuple[UnitCallSite, ...] = ()


# ---------------------------------------------------------------------------
# module naming and import resolution
# ---------------------------------------------------------------------------


def module_name_for_path(rel_path: str) -> tuple[str, bool]:
    """``(dotted module name, is_package)`` for a repo-relative path.

    ``src/repro/core/dbf.py`` → ``("repro.core.dbf", False)``;
    package ``__init__`` files name the package itself.
    """
    parts = [p for p in rel_path.split("/") if p]
    if parts and parts[0] == "src":
        parts = parts[1:]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    is_package = bool(parts) and parts[-1] == "__init__"
    if is_package:
        parts = parts[:-1]
    return ".".join(parts), is_package


def _resolve_from_import(
    module: str, is_package: bool, node: ast.ImportFrom
) -> str | None:
    """Absolute module an ``ImportFrom`` refers to, or ``None``."""
    if node.level == 0:
        return node.module
    base = module.split(".") if module else []
    if not is_package:
        base = base[:-1]
    drop = node.level - 1
    if drop:
        if drop > len(base):
            return None
        base = base[: len(base) - drop]
    if node.module:
        base = base + node.module.split(".")
    return ".".join(base) if base else None


# ---------------------------------------------------------------------------
# seed provenance
# ---------------------------------------------------------------------------


def _informative_term(term: tuple) -> bool:
    """Worth recording: concrete scaled, or awaiting a call's dimension."""
    if term[0] == "dim":
        return term[1] in SCALED_DIMS
    return term_has_call(term)


def _unparse(node: ast.AST, limit: int = 40) -> str:
    try:
        text = ast.unparse(node)
    except Exception:  # pragma: no cover - defensive
        text = type(node).__name__
    return text if len(text) <= limit else text[: limit - 3] + "..."


class _ProvenancePass:
    """Scope-aware forward pass binding names to seed provenance.

    The same shape as :class:`~repro.lint.typeinfer.TypeInference`, but
    tracking a different lattice: does this value derive from the
    crc32 trial-seed digest chain (parameters/attributes named ``seed``,
    ``zlib.crc32``, ``SeedSequence`` and friends), from a known
    non-deterministic source (``hash``, wall clocks, ``os.*``), from a
    project function call (deferred to phase 2), or from nowhere we can
    prove?
    """

    def __init__(self, ctx: FileContext, resolver) -> None:
        self.ctx = ctx
        self._resolve_call = resolver
        self._envs: dict[ast.AST, dict[str, SeedProv]] = {}
        self._build(ctx.tree, {})

    def _build(self, scope: ast.AST, inherited: dict[str, SeedProv]) -> None:
        env = dict(inherited)
        self._envs[scope] = env
        body = getattr(scope, "body", [])
        if isinstance(body, list):
            self._stmts(body, env)

    def _stmts(self, stmts: list[ast.stmt], env: dict[str, SeedProv]) -> None:
        for stmt in stmts:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._build(stmt, env)
                continue
            if isinstance(stmt, ast.ClassDef):
                self._stmts(stmt.body, dict(env))
                continue
            if isinstance(stmt, ast.Assign):
                prov = self.prov_in_env(stmt.value, env)
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        env[target.id] = prov
            elif (
                isinstance(stmt, ast.AnnAssign)
                and isinstance(stmt.target, ast.Name)
                and stmt.value is not None
            ):
                env[stmt.target.id] = self.prov_in_env(stmt.value, env)
            for field_name in ("body", "orelse", "finalbody"):
                inner = getattr(stmt, field_name, None)
                if isinstance(inner, list):
                    self._stmts(
                        [s for s in inner if isinstance(s, ast.stmt)], env
                    )
            for handler in getattr(stmt, "handlers", None) or []:
                self._stmts(handler.body, env)

    def env_for(self, node: ast.AST) -> dict[str, SeedProv]:
        cur: ast.AST | None = node
        while cur is not None:
            if cur in self._envs:
                return self._envs[cur]
            cur = getattr(cur, "_repro_parent", None)
        return {}

    def prov_of(self, node: ast.expr) -> SeedProv:
        return self.prov_in_env(node, self.env_for(node))

    def prov_in_env(
        self, node: ast.expr, env: dict[str, SeedProv]
    ) -> SeedProv:  # noqa: C901 - one dispatch table, clearer flat
        if isinstance(node, ast.Constant):
            if node.value is None:
                return SeedProv(taint="a `None` seed draws OS entropy")
            return _PROV_SEED  # explicit literals are reproducible
        if isinstance(node, ast.Name):
            if _SEED_NAME_RE.search(node.id):
                return _PROV_SEED
            if node.id in env:
                return env[node.id]
            return SeedProv(unknown=f"`{node.id}` has no seed provenance")
        if isinstance(node, ast.Attribute):
            if _SEED_NAME_RE.search(node.attr):
                return _PROV_SEED
            return SeedProv(unknown=f"`{_unparse(node)}` has no seed provenance")
        if isinstance(node, ast.UnaryOp):
            return self.prov_in_env(node.operand, env)
        if isinstance(node, ast.BinOp):
            return combine_provs(
                [
                    self.prov_in_env(node.left, env),
                    self.prov_in_env(node.right, env),
                ]
            )
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            return combine_provs(
                [self.prov_in_env(e, env) for e in node.elts]
            )
        if isinstance(node, ast.Subscript):
            return self.prov_in_env(node.value, env)
        if isinstance(node, ast.IfExp):
            return combine_provs(
                [
                    self.prov_in_env(node.body, env),
                    self.prov_in_env(node.orelse, env),
                ]
            )
        if isinstance(node, ast.NamedExpr):
            return self.prov_in_env(node.value, env)
        if isinstance(node, ast.Call):
            return self._call_prov(node, env)
        return SeedProv(unknown=f"`{_unparse(node)}` has no seed provenance")

    def _call_prov(
        self, node: ast.Call, env: dict[str, SeedProv]
    ) -> SeedProv:
        func = node.func
        arg_values = list(node.args) + [kw.value for kw in node.keywords]

        if isinstance(func, ast.Name):
            if func.id in _TAINT_BUILTINS:
                detail = (
                    "varies with PYTHONHASHSEED"
                    if func.id == "hash"
                    else "varies per process"
                )
                return SeedProv(taint=f"`{func.id}(...)` {detail}")
            if func.id in _PASSTHROUGH_BUILTINS:
                return combine_provs(
                    [self.prov_in_env(a, env) for a in arg_values]
                )
            origin = self.ctx.from_imports.get(func.id)
            if origin is not None and origin[0] in _TAINT_MODULES:
                return SeedProv(
                    taint=f"`{origin[0]}.{origin[1]}(...)` is "
                    "environment-dependent"
                )
        if self.ctx.resolves_to(func, "zlib", "crc32"):
            return _PROV_SEED  # the blessed stable digest
        if isinstance(func, ast.Attribute):
            base = func.value
            if (
                isinstance(base, ast.Name)
                and self.ctx.import_aliases.get(base.id) in _TAINT_MODULES
            ):
                return SeedProv(
                    taint=f"`{self.ctx.import_aliases[base.id]}.{func.attr}"
                    "(...)` is environment-dependent"
                )
            if func.attr in _DERIVING_METHODS:
                # ss.generate_state(n) / ss.spawn(k): receiver provenance
                return self.prov_in_env(base, env)
            if func.attr in RNG_CONSTRUCTORS:
                # constructing from components: the mixture rule
                return combine_provs(
                    [self.prov_in_env(a, env) for a in arg_values]
                )
        if isinstance(func, ast.Name) and func.id in RNG_CONSTRUCTORS:
            return combine_provs(
                [self.prov_in_env(a, env) for a in arg_values]
            )
        resolved = self._resolve_call(node)
        if resolved is not None:
            return SeedProv(deps=(resolved,))
        return SeedProv(unknown=f"call to `{_unparse(func)}` is unresolved")


# ---------------------------------------------------------------------------
# the builder
# ---------------------------------------------------------------------------


def _rng_constructor(ctx: FileContext, func: ast.expr) -> str | None:
    """Constructor name if ``func`` denotes a numpy RNG constructor."""
    if isinstance(func, ast.Attribute) and func.attr in RNG_CONSTRUCTORS:
        value = func.value
        # np.random.default_rng / numpy.random.default_rng
        if (
            isinstance(value, ast.Attribute)
            and value.attr == "random"
            and isinstance(value.value, ast.Name)
            and ctx.import_aliases.get(value.value.id) == "numpy"
        ):
            return func.attr
        # from numpy import random [as npr]
        if isinstance(value, ast.Name) and ctx.from_imports.get(value.id) == (
            "numpy",
            "random",
        ):
            return func.attr
    if isinstance(func, ast.Name):
        origin = ctx.from_imports.get(func.id)
        if origin is not None and origin[0] == "numpy.random":
            if origin[1] in RNG_CONSTRUCTORS:
                return origin[1]
    return None


def _collect_names(target: ast.expr, into: set[str]) -> None:
    """Bare names bound by an assignment/loop target, recursively."""
    if isinstance(target, ast.Name):
        into.add(target.id)
    elif isinstance(target, (ast.Tuple, ast.List)):
        for elt in target.elts:
            _collect_names(elt, into)
    elif isinstance(target, ast.Starred):
        _collect_names(target.value, into)


class _EffectWalker:
    """Extract effects, calls, mutations, and captures from one function.

    A recursive statement walker carrying an ``under_lock`` flag that
    flips inside ``with <lock>:`` (or lock-helper) blocks; nested
    ``def``/``class``/``lambda`` bodies are skipped — nested functions
    get their own summaries, and lambdas stay opaque by design.
    """

    def __init__(
        self,
        builder: "_SummaryBuilder",
        fn: ast.FunctionDef | ast.AsyncFunctionDef,
        qualname: str,
        cls_name: str,
    ) -> None:
        self.b = builder
        self.ctx = builder.ctx
        self.fn = fn
        self.qualname = qualname
        self.cls_name = cls_name
        self.effects: dict[str, EffectSite] = {}
        self.calls: list[CallSite] = []
        self.mutations: list[MutationSite] = []
        self.captures: list[CaptureSite] = []
        args = fn.args
        self.params = {
            a.arg
            for a in [*args.posonlyargs, *args.args, *args.kwonlyargs]
        }
        if args.vararg is not None:
            self.params.add(args.vararg.arg)
        if args.kwarg is not None:
            self.params.add(args.kwarg.arg)
        self.globals_decl: set[str] = set()
        self.nonlocals_decl: set[str] = set()
        self.local_names: set[str] = set()
        self.nested_defs: set[str] = set()
        #: local name → resolved target bound via functools.partial
        self.partial_bindings: dict[str, tuple[str, str]] = {}
        self._prescan(fn.body)
        self.local_names -= self.globals_decl | self.nonlocals_decl
        for stmt in fn.body:
            self._walk(stmt, False)

    # -- scope facts ---------------------------------------------------------

    def _prescan(self, stmts: list[ast.stmt]) -> None:
        for stmt in stmts:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.nested_defs.add(stmt.name)
                self.local_names.add(stmt.name)
                continue
            if isinstance(stmt, ast.ClassDef):
                self.local_names.add(stmt.name)
                continue
            if isinstance(stmt, ast.Global):
                self.globals_decl.update(stmt.names)
            elif isinstance(stmt, ast.Nonlocal):
                self.nonlocals_decl.update(stmt.names)
            elif isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    _collect_names(target, self.local_names)
            elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
                _collect_names(stmt.target, self.local_names)
            elif isinstance(stmt, (ast.For, ast.AsyncFor)):
                _collect_names(stmt.target, self.local_names)
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                for item in stmt.items:
                    if item.optional_vars is not None:
                        _collect_names(item.optional_vars, self.local_names)
            for field_name in ("body", "orelse", "finalbody"):
                inner = getattr(stmt, field_name, None)
                if isinstance(inner, list):
                    self._prescan(
                        [s for s in inner if isinstance(s, ast.stmt)]
                    )
            for handler in getattr(stmt, "handlers", None) or []:
                self._prescan(handler.body)

    def _is_param(self, name: str) -> bool:
        return name in self.params and name not in ("self", "cls")

    def _is_module_global(self, name: str) -> bool:
        if name in self.globals_decl:
            return True
        return (
            name in self.b.module_globals
            and name not in self.local_names
            and name not in self.params
        )

    # -- the walk ------------------------------------------------------------

    def _walk(self, node: ast.AST, under_lock: bool) -> None:
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)
        ):
            return
        if isinstance(node, (ast.With, ast.AsyncWith)):
            locked = under_lock
            for item in node.items:
                self._walk(item.context_expr, under_lock)
                if with_item_locked(item.context_expr, self.b.lock_helpers):
                    locked = True
            if locked and not under_lock and isinstance(node, ast.With):
                # sync lock entry only: `async with` awaits, never blocks
                self._note("lock", "enters a lock context", node)
            for stmt in node.body:
                self._walk(stmt, locked)
            return
        if isinstance(node, ast.Call):
            self._call(node, under_lock)
        elif isinstance(node, ast.Assign):
            self._assign(node, under_lock)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            self._target_mutation(node.target, node, under_lock)
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                self._target_mutation(target, node, under_lock)
        for child in ast.iter_child_nodes(node):
            self._walk(child, under_lock)

    # -- effect recording ----------------------------------------------------

    def _note(self, tag: str, detail: str, node: ast.AST) -> None:
        if tag in self.effects:
            return
        line = getattr(node, "lineno", self.fn.lineno)
        self.effects[tag] = EffectSite(
            tag=tag,
            detail=detail,
            line=line,
            col=getattr(node, "col_offset", 0) + 1,
            end_line=self.ctx.statement_span(node)[1],
            snippet=self.ctx.snippet(line),
        )

    def _attr_mutation(
        self, attr: str, detail: str, node: ast.AST, under_lock: bool
    ) -> None:
        line = getattr(node, "lineno", self.fn.lineno)
        self.mutations.append(
            MutationSite(
                target=attr,
                kind="attr",
                detail=detail,
                line=line,
                col=getattr(node, "col_offset", 0) + 1,
                end_line=self.ctx.statement_span(node)[1],
                snippet=self.ctx.snippet(line),
                under_lock=under_lock,
            )
        )

    def _global_mutation(
        self, name: str, detail: str, node: ast.AST, under_lock: bool
    ) -> None:
        tag = "memo-write" if _MEMO_NAME_RE.search(name) else "mutates-global"
        self._note(tag, f"{detail} mutates module global `{name}`", node)
        line = getattr(node, "lineno", self.fn.lineno)
        self.mutations.append(
            MutationSite(
                target=name,
                kind="global",
                detail=detail,
                line=line,
                col=getattr(node, "col_offset", 0) + 1,
                end_line=self.ctx.statement_span(node)[1],
                snippet=self.ctx.snippet(line),
                under_lock=under_lock,
            )
        )

    # -- assignments and deletions -------------------------------------------

    def _assign(self, node: ast.Assign, under_lock: bool) -> None:
        if (
            len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and isinstance(node.value, ast.Call)
            and self._is_partial(node.value.func)
            and node.value.args
        ):
            ref, _ = self._callable_ref(node.value.args[0])
            if ref is not None:
                self.partial_bindings[node.targets[0].id] = ref
        for target in node.targets:
            self._target_mutation(target, node, under_lock)

    def _target_mutation(
        self, target: ast.expr, stmt: ast.AST, under_lock: bool
    ) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._target_mutation(elt, stmt, under_lock)
            return
        if isinstance(target, ast.Starred):
            self._target_mutation(target.value, stmt, under_lock)
            return
        if isinstance(target, ast.Name):
            if target.id in self.globals_decl:
                self._global_mutation(target.id, "assignment", stmt, under_lock)
            elif target.id in self.nonlocals_decl:
                self._note(
                    "mutates-nonlocal",
                    f"assigns enclosing-scope variable `{target.id}`",
                    stmt,
                )
            return
        attr = self_private_attr(target)
        if attr is not None:
            if "lock" not in attr.lower():
                self._attr_mutation(attr, "assignment to", stmt, under_lock)
            return
        base = target
        while isinstance(base, ast.Subscript):
            base = base.value
        if isinstance(base, ast.Attribute):
            root = base.value
            if isinstance(root, ast.Name) and self._is_param(root.id):
                self._note(
                    "mutates-param",
                    f"assigns an attribute of parameter `{root.id}`",
                    stmt,
                )
            return
        if isinstance(base, ast.Name):
            if self._is_module_global(base.id):
                self._global_mutation(
                    base.id, "item assignment", stmt, under_lock
                )
            elif self._is_param(base.id):
                self._note(
                    "mutates-param",
                    f"assigns into parameter `{base.id}`",
                    stmt,
                )
            elif base.id in self.nonlocals_decl:
                self._note(
                    "mutates-nonlocal",
                    f"mutates enclosing-scope variable `{base.id}`",
                    stmt,
                )

    # -- calls ---------------------------------------------------------------

    def _call(self, node: ast.Call, under_lock: bool) -> None:
        resolved = self._resolve_local_call(node)
        if resolved is not None:
            line = node.lineno
            self.calls.append(
                CallSite(
                    module=resolved[0],
                    name=resolved[1],
                    line=line,
                    col=node.col_offset + 1,
                    snippet=self.ctx.snippet(line),
                    under_lock=under_lock,
                )
            )
        self._builtin_effects(node)
        self._mutator_call(node, under_lock)
        self._capture(node, resolved)

    def _resolve_local_call(self, node: ast.Call) -> tuple[str, str] | None:
        func = node.func
        if isinstance(func, ast.Name):
            if func.id in self.nested_defs:
                return (self.b.module, f"{self.qualname}.{func.id}")
            if func.id in self.partial_bindings:
                return self.partial_bindings[func.id]
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == "self"
            and self.cls_name
        ):
            # self._m(...): a same-class method call — phase 2 resolves
            # (or discards) the `Class.m` qualname
            return (self.b.module, f"{self.cls_name}.{func.attr}")
        return self.b.resolve_call(node)

    def _builtin_effects(self, node: ast.Call) -> None:
        ctx = self.ctx
        func = node.func
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            base = ctx.import_aliases.get(func.value.id)
            if base == "time":
                if func.attr in _WALL_CLOCK_TIME_FNS:
                    self._note(
                        "wall-clock",
                        f"reads a clock via `time.{func.attr}()`",
                        node,
                    )
                elif func.attr == "sleep":
                    self._note(
                        "blocking", "`time.sleep(...)` blocks the thread", node
                    )
            elif base == "subprocess" and func.attr in _SUBPROCESS_FNS:
                self._note(
                    "process",
                    f"spawns a subprocess via `subprocess.{func.attr}(...)`",
                    node,
                )
            elif base == "os" and func.attr == "system":
                self._note(
                    "process", "`os.system(...)` spawns a subprocess", node
                )
            elif base == "random":
                self._note(
                    "rng",
                    f"draws from the process-global `random.{func.attr}` RNG",
                    node,
                )
        if (
            isinstance(func, ast.Attribute)
            and func.attr in RNG_CONSTRUCTORS | {"random", "shuffle", "choice"}
            and isinstance(func.value, ast.Attribute)
            and func.value.attr == "random"
            and isinstance(func.value.value, ast.Name)
            and ctx.import_aliases.get(func.value.value.id) == "numpy"
        ):
            self._note(
                "rng", f"draws via `numpy.random.{func.attr}(...)`", node
            )
        if isinstance(func, ast.Name):
            origin = ctx.from_imports.get(func.id)
            if origin is not None:
                if origin[0] == "time" and origin[1] in _WALL_CLOCK_TIME_FNS:
                    self._note(
                        "wall-clock",
                        f"reads a clock via `{origin[1]}()`",
                        node,
                    )
                elif origin == ("time", "sleep"):
                    self._note(
                        "blocking", "`time.sleep(...)` blocks the thread", node
                    )
                elif origin[0] == "subprocess" and origin[1] in _SUBPROCESS_FNS:
                    self._note(
                        "process",
                        f"spawns a subprocess via `{origin[1]}(...)`",
                        node,
                    )
                elif origin[0] == "random":
                    self._note(
                        "rng",
                        f"draws from the process-global `random.{origin[1]}`",
                        node,
                    )
            elif func.id == "open":
                self._note("io", "opens a file handle via `open(...)`", node)
        if isinstance(func, ast.Attribute):
            if func.attr in _IO_METHODS and func.attr != "open":
                self._note("io", f"file IO via `.{func.attr}(...)`", node)
            elif func.attr == "open" and not isinstance(func.value, ast.Name):
                pass  # method `open` on a complex receiver: too ambiguous
            if func.attr == "acquire" and mentions_lock(func):
                self._note("blocking", "acquires a lock via `.acquire()`", node)
            elif func.attr in _PROC_WAIT_METHODS and self._receiver_mentions(
                func.value, ("proc",)
            ):
                self._note(
                    "blocking",
                    f"waits on a child process via `.{func.attr}()`",
                    node,
                )
            elif func.attr in _BLOCKING_SOCKET_METHODS and self._receiver_mentions(
                func.value, ("sock", "conn")
            ):
                self._note(
                    "blocking",
                    f"blocking socket call `.{func.attr}(...)`",
                    node,
                )

    @staticmethod
    def _receiver_mentions(node: ast.expr, needles: tuple[str, ...]) -> bool:
        for sub in ast.walk(node):
            text = ""
            if isinstance(sub, ast.Attribute):
                text = sub.attr.lower()
            elif isinstance(sub, ast.Name):
                text = sub.id.lower()
            if text and any(needle in text for needle in needles):
                return True
        return False

    def _mutator_call(self, node: ast.Call, under_lock: bool) -> None:
        func = node.func
        if not isinstance(func, ast.Attribute) or func.attr not in MUTATOR_METHODS:
            return
        attr = self_private_attr(func.value)
        if attr is not None:
            if "lock" not in attr.lower():
                self._attr_mutation(
                    attr, f"`.{func.attr}(...)` on", node, under_lock
                )
            return
        base = func.value
        while isinstance(base, ast.Subscript):
            base = base.value
        if not isinstance(base, ast.Name):
            return
        if self._is_module_global(base.id):
            self._global_mutation(
                base.id, f"`.{func.attr}(...)`", node, under_lock
            )
        elif self._is_param(base.id):
            self._note(
                "mutates-param",
                f"`.{func.attr}(...)` mutates parameter `{base.id}`",
                node,
            )
        elif base.id in self.nonlocals_decl:
            self._note(
                "mutates-nonlocal",
                f"`.{func.attr}(...)` mutates enclosing-scope `{base.id}`",
                node,
            )

    # -- process-boundary captures (REP013) ----------------------------------

    def _is_partial(self, func: ast.expr) -> bool:
        if isinstance(func, ast.Name):
            return self.ctx.from_imports.get(func.id) == ("functools", "partial")
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            return (
                self.ctx.import_aliases.get(func.value.id) == "functools"
                and func.attr == "partial"
            )
        return False

    def _callable_ref(
        self, expr: ast.expr
    ) -> tuple[tuple[str, str] | None, str]:
        """Resolve a callable argument to a summarized function."""
        if isinstance(expr, ast.Lambda):
            return None, "lambda"
        if isinstance(expr, ast.Name):
            if expr.id in self.partial_bindings:
                return self.partial_bindings[expr.id], ""
            if expr.id in self.nested_defs:
                return (self.b.module, f"{self.qualname}.{expr.id}"), ""
            resolved = self.b.resolve_name(expr.id)
            return resolved, ""
        if isinstance(expr, ast.Call) and self._is_partial(expr.func) and expr.args:
            return self._callable_ref(expr.args[0])
        if (
            isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)
            and expr.value.id == "self"
            and self.cls_name
        ):
            return (self.b.module, f"{self.cls_name}.{expr.attr}"), ""
        return None, ""

    def _carrier_candidates(
        self, node: ast.Call
    ) -> tuple[tuple[str, str], ...]:
        out: list[tuple[str, str]] = []
        exprs = list(node.args) + [kw.value for kw in node.keywords]
        for expr in exprs:
            for sub in ast.walk(expr):
                if not isinstance(sub, ast.Name):
                    continue
                cand: tuple[str, str] | None = None
                if self._is_module_global(sub.id):
                    cand = (self.b.module, sub.id)
                elif sub.id in self.b._symbol_imports:
                    cand = self.b._symbol_imports[sub.id]
                if cand is not None and cand not in out:
                    out.append(cand)
        return tuple(out)

    def _capture(
        self, node: ast.Call, resolved: tuple[str, str] | None
    ) -> None:
        func = node.func
        bare = ""
        if isinstance(func, ast.Name):
            bare = func.id
        elif isinstance(func, ast.Attribute):
            bare = func.attr
        name = resolved[1] if resolved is not None else bare
        line = node.lineno
        if name in _FANOUT_FUNCTIONS:
            fn_ref: tuple[str, str] | None = None
            local_callable = ""
            if node.args:
                fn_ref, local_callable = self._callable_ref(node.args[0])
            self.captures.append(
                CaptureSite(
                    kind="fanout",
                    line=line,
                    col=node.col_offset + 1,
                    end_line=self.ctx.statement_span(node)[1],
                    snippet=self.ctx.snippet(line),
                    fn_ref=fn_ref,
                    local_callable=local_callable,
                    carrier_candidates=self._carrier_candidates(node),
                )
            )
            return
        is_pickle = self.ctx.resolves_to(func, "pickle", "dumps") or (
            name in _PICKLE_FRAME_FUNCTIONS
        )
        if is_pickle:
            candidates = self._carrier_candidates(node)
            if candidates:
                self.captures.append(
                    CaptureSite(
                        kind="pickle",
                        line=line,
                        col=node.col_offset + 1,
                        end_line=self.ctx.statement_span(node)[1],
                        snippet=self.ctx.snippet(line),
                        carrier_candidates=candidates,
                    )
                )


class _SummaryBuilder:
    def __init__(self, ctx: FileContext) -> None:
        self.ctx = ctx
        self.module, self.is_package = module_name_for_path(ctx.path)
        self._local_functions: set[str] = {
            n.name
            for n in ctx.tree.body
            if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        self._symbol_imports: dict[str, tuple[str, str]] = {}
        self._module_aliases: dict[str, str] = {}
        self._imports: list[str] = []
        self._collect_imports()
        self.prov = _ProvenancePass(ctx, self.resolve_call)
        self.units = UnitInference(ctx.tree, self.resolve_call)
        self.lock_helpers = lock_helper_names(ctx.tree)
        self.module_globals = self._collect_module_globals()
        self._captures: list[CaptureSite] = []

    # -- imports ------------------------------------------------------------

    def _collect_imports(self) -> None:
        seen: set[str] = set()

        def add(name: str | None) -> None:
            if name and name not in seen:
                seen.add(name)
                self._imports.append(name)

        for node in ast.walk(self.ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    add(alias.name)
                    self._module_aliases[alias.asname or alias.name] = alias.name
            elif isinstance(node, ast.ImportFrom):
                origin = _resolve_from_import(self.module, self.is_package, node)
                if origin is None:
                    continue
                add(origin)
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    # `from pkg import mod` may bind a submodule: record
                    # the candidate edge; the graph keeps real modules
                    add(f"{origin}.{alias.name}")
                    self._symbol_imports[alias.asname or alias.name] = (
                        origin,
                        alias.name,
                    )

    # -- module-level state --------------------------------------------------

    def _collect_module_globals(self) -> set[str]:
        names: set[str] = set()
        for node in self.ctx.tree.body:
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    _collect_names(target, names)
            elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                _collect_names(node.target, names)
        return names

    def _global_carriers(self) -> list[tuple[str, str]]:
        """Module globals whose initializer holds a lock/socket/handle."""
        carriers: dict[str, str] = {}
        for node in self.ctx.tree.body:
            targets: list[ast.Name] = []
            value: ast.expr | None = None
            if isinstance(node, ast.Assign):
                targets = [t for t in node.targets if isinstance(t, ast.Name)]
                value = node.value
            elif (
                isinstance(node, ast.AnnAssign)
                and isinstance(node.target, ast.Name)
                and node.value is not None
            ):
                targets = [node.target]
                value = node.value
            if not targets or value is None:
                continue
            detail = self._carrier_detail(value, carriers)
            if detail:
                for target in targets:
                    carriers[target.id] = detail
        return sorted(carriers.items())

    def _carrier_detail(self, expr: ast.expr, known: dict[str, str]) -> str:
        for sub in ast.walk(expr):
            if isinstance(sub, ast.Call):
                func = sub.func
                if isinstance(func, ast.Attribute) and isinstance(
                    func.value, ast.Name
                ):
                    base = self.ctx.import_aliases.get(func.value.id)
                    if base == "threading" and func.attr in _LOCK_FACTORY_ATTRS:
                        return f"threading.{func.attr}()"
                    if base == "socket" and func.attr == "socket":
                        return "socket.socket()"
                if isinstance(func, ast.Name):
                    origin = self.ctx.from_imports.get(func.id)
                    if origin is not None:
                        if (
                            origin[0] == "threading"
                            and origin[1] in _LOCK_FACTORY_ATTRS
                        ):
                            return f"threading.{origin[1]}()"
                        if origin == ("socket", "socket"):
                            return "socket.socket()"
                    elif func.id == "open":
                        return "open(...)"
            if isinstance(sub, ast.Name) and sub.id in known:
                return known[sub.id]
        return ""

    # -- call resolution ----------------------------------------------------

    def resolve_call(self, node: ast.Call) -> tuple[str, str] | None:
        """``(module, function)`` a call refers to, when statically clear."""
        func = node.func
        if isinstance(func, ast.Name):
            return self.resolve_name(func.id)
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            base = func.value.id
            if base in self._module_aliases:
                return (self._module_aliases[base], func.attr)
            # `from repro import core; core.fn(...)` — submodule binding
            origin = self._symbol_imports.get(base)
            if origin is not None:
                return (f"{origin[0]}.{origin[1]}", func.attr)
        return None

    def resolve_name(self, name: str) -> tuple[str, str] | None:
        """Resolve a bare name to a ``(module, function)``, if clear."""
        if name in self._symbol_imports:
            return self._symbol_imports[name]
        if name in self._local_functions:
            return (self.module, name)
        return None

    # -- functions ----------------------------------------------------------

    def _function_summaries(self) -> Iterator[FunctionSummary]:
        for node, qualname, is_method, cls_name in self._functions_with_qualnames():
            returns = self._returns_of(node)
            returns_float = self._annotated_float(node)
            deps: list[tuple[str, str]] = []
            seed_provs: list[SeedProv] = []
            for ret in returns:
                if ret.value is None:
                    continue
                if self.ctx.types.kind_of(ret.value) == FLOAT:
                    returns_float = True
                if isinstance(ret.value, ast.Call):
                    dep = self.resolve_call(ret.value)
                    if dep is not None and dep not in deps:
                        deps.append(dep)
                seed_provs.append(self.prov.prov_of(ret.value))
            walker = _EffectWalker(self, node, qualname, cls_name)
            self._captures.extend(walker.captures)
            return_terms = [
                self.units.term_of(ret.value)
                for ret in returns
                if ret.value is not None
            ]
            yield FunctionSummary(
                qualname=qualname,
                returns_float=returns_float,
                return_call_deps=tuple(deps),
                return_seed_provs=tuple(seed_provs),
                holds_lock=self._holds_lock(node),
                is_async=isinstance(node, ast.AsyncFunctionDef),
                is_method=is_method,
                line=node.lineno,
                snippet=self.ctx.snippet(node.lineno),
                memoized=self._memo_decorator(node),
                effects=tuple(
                    walker.effects[tag] for tag in sorted(walker.effects)
                ),
                calls=tuple(walker.calls),
                mutations=tuple(walker.mutations),
                return_dim_term=(
                    term_join(return_terms) if return_terms else None
                ),
                param_order=self._param_order(node),
                param_dims=self._param_dims(node),
            )

    def _functions_with_qualnames(
        self,
    ) -> Iterator[
        tuple[ast.FunctionDef | ast.AsyncFunctionDef, str, bool, str]
    ]:
        """``(node, qualname, is_method, class name)`` for every ``def``.

        Walks nested functions too (``outer.inner`` qualnames) so effect
        facts exist for closures handed to pools and memo decorators on
        inner helpers; ``class name`` propagates into a method's nested
        functions (their ``self`` is the method's).
        """

        def walk_body(
            body: list[ast.stmt], prefix: str, cls_name: str
        ) -> Iterator[
            tuple[ast.FunctionDef | ast.AsyncFunctionDef, str, bool, str]
        ]:
            for node in body:
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    qual = f"{prefix}{node.name}"
                    yield node, qual, False, cls_name
                    yield from walk_body(node.body, f"{qual}.", cls_name)
                elif isinstance(node, ast.ClassDef):
                    yield from walk_class(node, prefix)

        def walk_class(
            cls: ast.ClassDef, prefix: str
        ) -> Iterator[
            tuple[ast.FunctionDef | ast.AsyncFunctionDef, str, bool, str]
        ]:
            cls_qual = f"{prefix}{cls.name}"
            for sub in cls.body:
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    qual = f"{cls_qual}.{sub.name}"
                    yield sub, qual, True, cls_qual
                    yield from walk_body(sub.body, f"{qual}.", cls_qual)
                elif isinstance(sub, ast.ClassDef):
                    yield from walk_class(sub, f"{cls_qual}.")

        yield from walk_body(self.ctx.tree.body, "", "")

    def _memo_decorator(
        self, fn: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> str:
        for dec in fn.decorator_list:
            target = dec.func if isinstance(dec, ast.Call) else dec
            if isinstance(target, ast.Name):
                origin = self.ctx.from_imports.get(target.id)
                if origin is not None and origin[0] == "functools" and origin[
                    1
                ] in ("lru_cache", "cache"):
                    return f"functools.{origin[1]}"
            if isinstance(target, ast.Attribute) and isinstance(
                target.value, ast.Name
            ):
                if self.ctx.import_aliases.get(
                    target.value.id
                ) == "functools" and target.attr in ("lru_cache", "cache"):
                    return f"functools.{target.attr}"
        return ""

    @staticmethod
    def _annotated_float(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
        return isinstance(fn.returns, ast.Name) and fn.returns.id == "float"

    def _returns_of(
        self, fn: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> list[ast.Return]:
        out = []
        for sub in ast.walk(fn):
            if isinstance(sub, ast.Return) and self._nearest_function(sub) is fn:
                out.append(sub)
        return out

    def _nearest_function(self, node: ast.AST) -> ast.AST | None:
        for parent in self.ctx.parents(node):
            if isinstance(parent, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return parent
        return None

    def _holds_lock(self, fn: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
        for sub in ast.walk(fn):
            if isinstance(sub, (ast.With, ast.AsyncWith)) and any(
                with_item_locked(item.context_expr, self.lock_helpers)
                for item in sub.items
            ):
                return True
        return False

    # -- pending sites -------------------------------------------------------

    def _comparison_sites(self) -> Iterator[ComparisonSite]:
        from .rules.rep001_float_compare import _guards_raise, _is_exempt_literal

        for node in ast.walk(self.ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for i, op in enumerate(node.ops):
                op_text = _FLAGGED_CMP_OPS.get(type(op))
                if op_text is None:
                    continue
                left, right = operands[i], operands[i + 1]
                if _is_exempt_literal(left) or _is_exempt_literal(right):
                    continue
                left_desc = self._operand_desc(left)
                right_desc = self._operand_desc(right)
                if "call" not in (left_desc[0], right_desc[0]):
                    continue  # both local: REP001's territory
                if _guards_raise(self.ctx, node):
                    continue
                line = node.lineno
                yield ComparisonSite(
                    line=line,
                    col=node.col_offset + 1,
                    end_line=self.ctx.statement_span(node)[1],
                    snippet=self.ctx.snippet(line),
                    op_text=op_text,
                    left=left_desc,
                    right=right_desc,
                )

    def _operand_desc(self, expr: ast.expr) -> tuple[str, str, str]:
        if self.ctx.types.kind_of(expr) == FLOAT:
            return ("float", "", "")
        if isinstance(expr, ast.Call):
            resolved = self.resolve_call(expr)
            if resolved is not None:
                return ("call", resolved[0], resolved[1])
        return ("other", "", "")

    def _rng_sites(self) -> Iterator[RNGSite]:
        for node in ast.walk(self.ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            constructor = _rng_constructor(self.ctx, node.func)
            if constructor is None:
                continue
            args = list(node.args) + [kw.value for kw in node.keywords]
            if not args:
                continue  # REP002 already flags the unseeded form
            prov = combine_provs([self.prov.prov_of(a) for a in args])
            line = node.lineno
            yield RNGSite(
                line=line,
                col=node.col_offset + 1,
                end_line=self.ctx.statement_span(node)[1],
                snippet=self.ctx.snippet(line),
                constructor=constructor,
                prov=prov,
            )

    # -- unit facts ----------------------------------------------------------

    def _param_order(
        self, fn: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> tuple[str, ...]:
        args = fn.args
        return tuple(a.arg for a in [*args.posonlyargs, *args.args])

    def _param_dims(
        self, fn: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> tuple[tuple[str, str], ...]:
        """Scaled-dimension expectations for this function's parameters."""
        assigned = self._assigned_names(fn)
        out: list[tuple[str, str]] = []
        args = fn.args
        for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            dim = param_dim_for(arg)
            if dim is None and arg.arg not in assigned:
                dim = self._usage_dim(fn, arg.arg)
            if dim is not None and dim in SCALED_DIMS:
                out.append((arg.arg, dim))
        return tuple(out)

    @staticmethod
    def _assigned_names(fn: ast.AST) -> set[str]:
        names: set[str] = set()
        for sub in ast.walk(fn):
            if isinstance(sub, ast.Assign):
                for target in sub.targets:
                    _collect_names(target, names)
            elif isinstance(sub, (ast.AnnAssign, ast.AugAssign, ast.For)):
                _collect_names(sub.target, names)
            elif isinstance(sub, ast.NamedExpr):
                _collect_names(sub.target, names)
        return names

    def _usage_dim(self, fn: ast.AST, param: str) -> str | None:
        """Dimension implied by adding/comparing the bare parameter.

        Only a *consistent* vector across every such usage counts; a
        parameter mixed with several scales stays expectation-free.
        """
        candidates: list[str] = []
        for node in ast.walk(fn):
            pairs: list[tuple[ast.expr, ast.expr]] = []
            if isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.Add, ast.Sub)
            ):
                pairs.append((node.left, node.right))
            elif isinstance(node, ast.Compare):
                operands = [node.left, *node.comparators]
                for i, op in enumerate(node.ops):
                    if type(op) in _UNIT_CMP_OPS:
                        pairs.append((operands[i], operands[i + 1]))
            for left, right in pairs:
                for a, b in ((left, right), (right, left)):
                    if isinstance(a, ast.Name) and a.id == param:
                        term = self.units.term_of(b)
                        if term[0] == "dim" and term[1] in SCALED_DIMS:
                            candidates.append(term[1])
        if not candidates:
            return None
        first = candidates[0]
        if any(dims_clash(first, dim) for dim in candidates[1:]):
            return None
        return first

    def _unit_sites(self) -> Iterator[UnitSite]:
        for node in ast.walk(self.ctx.tree):
            pairs: list[tuple[ast.expr, ast.expr, str, str]] = []
            if isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.Add, ast.Sub)
            ):
                op_text = "+" if isinstance(node.op, ast.Add) else "-"
                pairs.append((node.left, node.right, op_text, "arith"))
            elif isinstance(node, ast.Compare):
                operands = [node.left, *node.comparators]
                for i, op in enumerate(node.ops):
                    cmp_text = _UNIT_CMP_OPS.get(type(op))
                    if cmp_text is not None:
                        pairs.append(
                            (operands[i], operands[i + 1], cmp_text, "compare")
                        )
            if not pairs:
                continue
            env = self.units.env_for(node)
            for left, right, op_text, context in pairs:
                left_term = self.units.term_in_env(left, env)
                right_term = self.units.term_in_env(right, env)
                if not (
                    _informative_term(left_term)
                    and _informative_term(right_term)
                ):
                    continue
                if (
                    left_term[0] == "dim"
                    and right_term[0] == "dim"
                    and not dims_clash(left_term[1], right_term[1])
                ):
                    continue  # locally proven compatible
                line = node.lineno
                yield UnitSite(
                    line=line,
                    col=node.col_offset + 1,
                    end_line=self.ctx.statement_span(node)[1],
                    snippet=self.ctx.snippet(line),
                    op_text=op_text,
                    context=context,
                    left=left_term,
                    right=right_term,
                    left_display=_unparse(left),
                    right_display=_unparse(right),
                )

    def _eps_sites(self) -> Iterator[EpsSite]:
        for node in ast.walk(self.ctx.tree):
            if not (
                isinstance(node, ast.BinOp)
                and isinstance(node.op, (ast.Add, ast.Sub))
            ):
                continue
            env = self.units.env_for(node)
            for eps, partner in (
                (node.right, node.left),
                (node.left, node.right),
            ):
                if not self._is_bare_eps(eps, env):
                    continue
                if self._is_bare_eps(partner, env):
                    break  # eps-to-eps arithmetic carries no scale
                context = self._eps_context(node)
                if not context:
                    break
                partner_term = self.units.term_in_env(partner, env)
                lineage = self._scaled_lineage(partner, env)
                if partner_term[0] == "dim":
                    dim = partner_term[1]
                    if dim in SCALED_DIMS and dim not in (WORK, TIME):
                        break  # utilization/speed are O(1): absolute eps is fine
                    if dim not in (WORK, TIME) and not lineage:
                        break  # no scale evidence at all
                line = node.lineno
                yield EpsSite(
                    line=line,
                    col=node.col_offset + 1,
                    end_line=self.ctx.statement_span(node)[1],
                    snippet=self.ctx.snippet(line),
                    context=context,
                    eps_display=_unparse(eps),
                    partner=partner_term,
                    partner_display=_unparse(partner),
                    lineage_dim=lineage,
                )
                break

    def _is_bare_eps(self, node: ast.expr, env: dict) -> bool:
        """An unscaled epsilon: a tiny literal or an eps-named constant."""
        if is_bare_epsilon_literal(node):
            return True
        if isinstance(node, ast.Name):
            name = node.id
        elif isinstance(node, ast.Attribute):
            name = node.attr
        else:
            return False
        if not _EPS_NAME_RE.search(name):
            return False
        # a *scaled* epsilon (`tol = EPS * max(1.0, abs(t))`) folds to a
        # concrete scaled dimension and is exactly the sanctioned form
        term = self.units.term_in_env(node, env)
        return term in (("dim", DIMENSIONLESS), ("dim", UNKNOWN))

    def _eps_context(self, node: ast.BinOp) -> str:
        """``compare``/``floor`` when the epsilon decides a boundary."""
        cur: ast.AST = node
        for parent in self.ctx.parents(node):
            if isinstance(parent, ast.stmt):
                return ""
            if isinstance(parent, ast.Compare):
                return "compare"
            if isinstance(parent, ast.Call) and cur is not parent.func:
                func = parent.func
                if isinstance(func, ast.Name):
                    fname = func.id
                elif isinstance(func, ast.Attribute):
                    fname = func.attr
                else:
                    fname = ""
                if fname in _FLOOR_LIKE_FUNCS:
                    return "floor"
                return ""  # the call result, not our operand, is compared
            cur = parent
        return ""

    def _scaled_lineage(self, partner: ast.expr, env: dict) -> str:
        """First ``work``/``time`` dimension found inside the partner.

        ``(t - d) / p`` folds to dimensionless, but its ``t`` leaf
        proves the quotient was built from time-scale values — the
        historical ``floor(q + EPS)`` shape.
        """
        for sub in ast.walk(partner):
            if isinstance(sub, ast.expr):
                term = self.units.term_in_env(sub, env)
                if term[0] == "dim" and term[1] in (WORK, TIME):
                    return term[1]
        return ""

    def _unit_call_sites(self) -> Iterator[UnitCallSite]:
        for node in ast.walk(self.ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = self.resolve_call(node)
            if resolved is None:
                continue
            env = self.units.env_for(node)
            args: list[tuple[str, str, tuple]] = []
            for i, arg in enumerate(node.args):
                if isinstance(arg, ast.Starred):
                    continue
                term = self.units.term_in_env(arg, env)
                if _informative_term(term):
                    args.append((str(i), _unparse(arg), term))
            for kw in node.keywords:
                if kw.arg is None:
                    continue
                term = self.units.term_in_env(kw.value, env)
                if _informative_term(term):
                    args.append((kw.arg, _unparse(kw.value), term))
            if not args:
                continue
            line = node.lineno
            yield UnitCallSite(
                line=line,
                col=node.col_offset + 1,
                end_line=self.ctx.statement_span(node)[1],
                snippet=self.ctx.snippet(line),
                module=resolved[0],
                name=resolved[1],
                args=tuple(args),
            )

    # -- assembly ------------------------------------------------------------

    def build(self) -> ModuleSummary:
        functions = tuple(self._function_summaries())
        return ModuleSummary(
            module=self.module,
            path=self.ctx.path,
            is_package=self.is_package,
            first_line=self.ctx.snippet(1),
            imports=tuple(self._imports),
            symbol_imports=tuple(
                (name, mod, orig)
                for name, (mod, orig) in sorted(self._symbol_imports.items())
            ),
            functions=functions,
            comparisons=tuple(self._comparison_sites()),
            rng_sites=tuple(self._rng_sites()),
            global_carriers=tuple(self._global_carriers()),
            capture_sites=tuple(self._captures),
            unit_sites=tuple(self._unit_sites()),
            eps_sites=tuple(self._eps_sites()),
            unit_calls=tuple(self._unit_call_sites()),
        )


def build_module_summary(ctx: FileContext) -> ModuleSummary:
    """Summarize one parsed module (phase 1's interprocedural output)."""
    return _SummaryBuilder(ctx).build()
