"""Per-module summaries — the facts phase 2 of the analyzer consumes.

Phase 1 (per file, parallelizable) reduces every module to a
:class:`ModuleSummary` of plain picklable data: which project modules it
imports, which functions it defines and what they return
("produces-float", "derives-from-trial-seed", "holds-lock"), plus the
*pending sites* the interprocedural rules will judge once every summary
is available — bare comparisons whose operand is a call into another
module (REP007) and RNG constructions whose seed argument's provenance
crosses function boundaries (REP008).

Everything here is deliberately AST-free and content-addressable: the
summaries travel through the process pool, live in the incremental
cache, and fully determine phase 2 — two runs that produce the same
summaries produce the same interprocedural findings.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Iterator

from .registry import FileContext
from .typeinfer import FLOAT

__all__ = [
    "SeedProv",
    "FunctionSummary",
    "ComparisonSite",
    "RNGSite",
    "ModuleSummary",
    "module_name_for_path",
    "build_module_summary",
]

#: names whose value is trusted seed material wherever they appear
_SEED_NAME_RE = re.compile(r"(^|_)(seed|seeds|entropy)(_|$)")

#: modules whose call results poison a seed derivation (environment-,
#: time-, or hash-dependent values)
_TAINT_MODULES = frozenset(
    {"time", "datetime", "os", "uuid", "secrets", "random", "socket", "platform"}
)

#: builtins that poison a seed derivation; ``hash`` is the historical
#: bug (PYTHONHASHSEED-dependent), ``id`` varies per process
_TAINT_BUILTINS = frozenset({"hash", "id"})

#: builtins that merely pass provenance through
_PASSTHROUGH_BUILTINS = frozenset({"int", "abs", "min", "max", "sum", "round"})

#: methods on SeedSequence/Generator objects that stay in the blessed
#: derivation chain
_DERIVING_METHODS = frozenset({"generate_state", "spawn", "integers"})

#: the RNG constructors REP008 audits (REP002 already covers the
#: zero-argument forms)
RNG_CONSTRUCTORS = frozenset({"default_rng", "Generator", "PCG64", "SeedSequence"})

_FLAGGED_CMP_OPS = {ast.LtE: "<=", ast.GtE: ">=", ast.Eq: "=="}


# ---------------------------------------------------------------------------
# summary records (all plain, hashable, picklable)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SeedProv:
    """Provenance verdict for one expression in the seed lattice.

    ``taint`` and ``unknown`` carry human-readable reasons; ``deps`` are
    ``(module, function)`` calls whose *return* provenance decides the
    verdict (resolved by the project graph's fixpoint).  Combination
    rule: taint dominates, then an explicit seed component blesses the
    mixture (the ``SeedSequence([base_seed, digest, point, rep])``
    pattern), then unresolved deps, then unknown.
    """

    taint: str = ""
    seed: bool = False
    unknown: str = ""
    deps: tuple[tuple[str, str], ...] = ()


#: provenance of an expression that is pure literal / blessed material
_PROV_SEED = SeedProv(seed=True)


def combine_provs(provs: list[SeedProv]) -> SeedProv:
    """Fold the provenance of an expression's components."""
    taint = next((p.taint for p in provs if p.taint), "")
    seed = any(p.seed for p in provs)
    unknown = next((p.unknown for p in provs if p.unknown), "")
    deps: list[tuple[str, str]] = []
    for p in provs:
        for dep in p.deps:
            if dep not in deps:
                deps.append(dep)
    return SeedProv(taint=taint, seed=seed, unknown=unknown, deps=tuple(deps))


@dataclass(frozen=True)
class FunctionSummary:
    """Interprocedural facts about one function or method."""

    #: ``name`` for module functions, ``Class.name`` for methods
    qualname: str
    #: a return path produces a float (directly inferred or annotated)
    returns_float: bool = False
    #: ``return f(...)`` calls whose return kind decides floatness
    return_call_deps: tuple[tuple[str, str], ...] = ()
    #: provenance of each ``return <expr>`` (all must be seed-derived
    #: for the function to count as a seed deriver)
    return_seed_provs: tuple[SeedProv, ...] = ()
    #: body contains a ``with <...lock...>:`` block (future
    #: lock-discipline summaries for service/ lean on this)
    holds_lock: bool = False


@dataclass(frozen=True)
class ComparisonSite:
    """A bare comparison with a cross-function operand (REP007 input)."""

    line: int
    col: int
    end_line: int
    snippet: str
    op_text: str
    #: operand descriptors: ``("float", "", "")``, ``("call", mod, fn)``,
    #: or ``("other", "", "")``
    left: tuple[str, str, str]
    right: tuple[str, str, str]


@dataclass(frozen=True)
class RNGSite:
    """An RNG constructed from an explicit argument (REP008 input)."""

    line: int
    col: int
    end_line: int
    snippet: str
    constructor: str
    prov: SeedProv


@dataclass(frozen=True)
class ModuleSummary:
    """Everything phase 2 needs to know about one module."""

    module: str
    path: str
    is_package: bool = False
    #: stripped first source line (fingerprint input for module-level
    #: findings such as REP009)
    first_line: str = ""
    #: absolute module names this module imports (project and external;
    #: the graph filters to project members)
    imports: tuple[str, ...] = ()
    #: ``local name -> (origin module, origin name)`` for from-imports
    symbol_imports: tuple[tuple[str, str, str], ...] = ()
    functions: tuple[FunctionSummary, ...] = ()
    comparisons: tuple[ComparisonSite, ...] = ()
    rng_sites: tuple[RNGSite, ...] = ()


# ---------------------------------------------------------------------------
# module naming and import resolution
# ---------------------------------------------------------------------------


def module_name_for_path(rel_path: str) -> tuple[str, bool]:
    """``(dotted module name, is_package)`` for a repo-relative path.

    ``src/repro/core/dbf.py`` → ``("repro.core.dbf", False)``;
    package ``__init__`` files name the package itself.
    """
    parts = [p for p in rel_path.split("/") if p]
    if parts and parts[0] == "src":
        parts = parts[1:]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    is_package = bool(parts) and parts[-1] == "__init__"
    if is_package:
        parts = parts[:-1]
    return ".".join(parts), is_package


def _resolve_from_import(
    module: str, is_package: bool, node: ast.ImportFrom
) -> str | None:
    """Absolute module an ``ImportFrom`` refers to, or ``None``."""
    if node.level == 0:
        return node.module
    base = module.split(".") if module else []
    if not is_package:
        base = base[:-1]
    drop = node.level - 1
    if drop:
        if drop > len(base):
            return None
        base = base[: len(base) - drop]
    if node.module:
        base = base + node.module.split(".")
    return ".".join(base) if base else None


# ---------------------------------------------------------------------------
# seed provenance
# ---------------------------------------------------------------------------


def _unparse(node: ast.AST, limit: int = 40) -> str:
    try:
        text = ast.unparse(node)
    except Exception:  # pragma: no cover - defensive
        text = type(node).__name__
    return text if len(text) <= limit else text[: limit - 3] + "..."


class _ProvenancePass:
    """Scope-aware forward pass binding names to seed provenance.

    The same shape as :class:`~repro.lint.typeinfer.TypeInference`, but
    tracking a different lattice: does this value derive from the
    crc32 trial-seed digest chain (parameters/attributes named ``seed``,
    ``zlib.crc32``, ``SeedSequence`` and friends), from a known
    non-deterministic source (``hash``, wall clocks, ``os.*``), from a
    project function call (deferred to phase 2), or from nowhere we can
    prove?
    """

    def __init__(self, ctx: FileContext, resolver) -> None:
        self.ctx = ctx
        self._resolve_call = resolver
        self._envs: dict[ast.AST, dict[str, SeedProv]] = {}
        self._build(ctx.tree, {})

    def _build(self, scope: ast.AST, inherited: dict[str, SeedProv]) -> None:
        env = dict(inherited)
        self._envs[scope] = env
        body = getattr(scope, "body", [])
        if isinstance(body, list):
            self._stmts(body, env)

    def _stmts(self, stmts: list[ast.stmt], env: dict[str, SeedProv]) -> None:
        for stmt in stmts:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._build(stmt, env)
                continue
            if isinstance(stmt, ast.ClassDef):
                self._stmts(stmt.body, dict(env))
                continue
            if isinstance(stmt, ast.Assign):
                prov = self.prov_in_env(stmt.value, env)
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        env[target.id] = prov
            elif (
                isinstance(stmt, ast.AnnAssign)
                and isinstance(stmt.target, ast.Name)
                and stmt.value is not None
            ):
                env[stmt.target.id] = self.prov_in_env(stmt.value, env)
            for field_name in ("body", "orelse", "finalbody"):
                inner = getattr(stmt, field_name, None)
                if isinstance(inner, list):
                    self._stmts(
                        [s for s in inner if isinstance(s, ast.stmt)], env
                    )
            for handler in getattr(stmt, "handlers", None) or []:
                self._stmts(handler.body, env)

    def env_for(self, node: ast.AST) -> dict[str, SeedProv]:
        cur: ast.AST | None = node
        while cur is not None:
            if cur in self._envs:
                return self._envs[cur]
            cur = getattr(cur, "_repro_parent", None)
        return {}

    def prov_of(self, node: ast.expr) -> SeedProv:
        return self.prov_in_env(node, self.env_for(node))

    def prov_in_env(
        self, node: ast.expr, env: dict[str, SeedProv]
    ) -> SeedProv:  # noqa: C901 - one dispatch table, clearer flat
        if isinstance(node, ast.Constant):
            if node.value is None:
                return SeedProv(taint="a `None` seed draws OS entropy")
            return _PROV_SEED  # explicit literals are reproducible
        if isinstance(node, ast.Name):
            if _SEED_NAME_RE.search(node.id):
                return _PROV_SEED
            if node.id in env:
                return env[node.id]
            return SeedProv(unknown=f"`{node.id}` has no seed provenance")
        if isinstance(node, ast.Attribute):
            if _SEED_NAME_RE.search(node.attr):
                return _PROV_SEED
            return SeedProv(unknown=f"`{_unparse(node)}` has no seed provenance")
        if isinstance(node, ast.UnaryOp):
            return self.prov_in_env(node.operand, env)
        if isinstance(node, ast.BinOp):
            return combine_provs(
                [
                    self.prov_in_env(node.left, env),
                    self.prov_in_env(node.right, env),
                ]
            )
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            return combine_provs(
                [self.prov_in_env(e, env) for e in node.elts]
            )
        if isinstance(node, ast.Subscript):
            return self.prov_in_env(node.value, env)
        if isinstance(node, ast.IfExp):
            return combine_provs(
                [
                    self.prov_in_env(node.body, env),
                    self.prov_in_env(node.orelse, env),
                ]
            )
        if isinstance(node, ast.NamedExpr):
            return self.prov_in_env(node.value, env)
        if isinstance(node, ast.Call):
            return self._call_prov(node, env)
        return SeedProv(unknown=f"`{_unparse(node)}` has no seed provenance")

    def _call_prov(
        self, node: ast.Call, env: dict[str, SeedProv]
    ) -> SeedProv:
        func = node.func
        arg_values = list(node.args) + [kw.value for kw in node.keywords]

        if isinstance(func, ast.Name):
            if func.id in _TAINT_BUILTINS:
                detail = (
                    "varies with PYTHONHASHSEED"
                    if func.id == "hash"
                    else "varies per process"
                )
                return SeedProv(taint=f"`{func.id}(...)` {detail}")
            if func.id in _PASSTHROUGH_BUILTINS:
                return combine_provs(
                    [self.prov_in_env(a, env) for a in arg_values]
                )
            origin = self.ctx.from_imports.get(func.id)
            if origin is not None and origin[0] in _TAINT_MODULES:
                return SeedProv(
                    taint=f"`{origin[0]}.{origin[1]}(...)` is "
                    "environment-dependent"
                )
        if self.ctx.resolves_to(func, "zlib", "crc32"):
            return _PROV_SEED  # the blessed stable digest
        if isinstance(func, ast.Attribute):
            base = func.value
            if (
                isinstance(base, ast.Name)
                and self.ctx.import_aliases.get(base.id) in _TAINT_MODULES
            ):
                return SeedProv(
                    taint=f"`{self.ctx.import_aliases[base.id]}.{func.attr}"
                    "(...)` is environment-dependent"
                )
            if func.attr in _DERIVING_METHODS:
                # ss.generate_state(n) / ss.spawn(k): receiver provenance
                return self.prov_in_env(base, env)
            if func.attr in RNG_CONSTRUCTORS:
                # constructing from components: the mixture rule
                return combine_provs(
                    [self.prov_in_env(a, env) for a in arg_values]
                )
        if isinstance(func, ast.Name) and func.id in RNG_CONSTRUCTORS:
            return combine_provs(
                [self.prov_in_env(a, env) for a in arg_values]
            )
        resolved = self._resolve_call(node)
        if resolved is not None:
            return SeedProv(deps=(resolved,))
        return SeedProv(unknown=f"call to `{_unparse(func)}` is unresolved")


# ---------------------------------------------------------------------------
# the builder
# ---------------------------------------------------------------------------


def _rng_constructor(ctx: FileContext, func: ast.expr) -> str | None:
    """Constructor name if ``func`` denotes a numpy RNG constructor."""
    if isinstance(func, ast.Attribute) and func.attr in RNG_CONSTRUCTORS:
        value = func.value
        # np.random.default_rng / numpy.random.default_rng
        if (
            isinstance(value, ast.Attribute)
            and value.attr == "random"
            and isinstance(value.value, ast.Name)
            and ctx.import_aliases.get(value.value.id) == "numpy"
        ):
            return func.attr
        # from numpy import random [as npr]
        if isinstance(value, ast.Name) and ctx.from_imports.get(value.id) == (
            "numpy",
            "random",
        ):
            return func.attr
    if isinstance(func, ast.Name):
        origin = ctx.from_imports.get(func.id)
        if origin is not None and origin[0] == "numpy.random":
            if origin[1] in RNG_CONSTRUCTORS:
                return origin[1]
    return None


class _SummaryBuilder:
    def __init__(self, ctx: FileContext) -> None:
        self.ctx = ctx
        self.module, self.is_package = module_name_for_path(ctx.path)
        self._local_functions: set[str] = {
            n.name
            for n in ctx.tree.body
            if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        self._symbol_imports: dict[str, tuple[str, str]] = {}
        self._module_aliases: dict[str, str] = {}
        self._imports: list[str] = []
        self._collect_imports()
        self.prov = _ProvenancePass(ctx, self.resolve_call)

    # -- imports ------------------------------------------------------------

    def _collect_imports(self) -> None:
        seen: set[str] = set()

        def add(name: str | None) -> None:
            if name and name not in seen:
                seen.add(name)
                self._imports.append(name)

        for node in ast.walk(self.ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    add(alias.name)
                    self._module_aliases[alias.asname or alias.name] = alias.name
            elif isinstance(node, ast.ImportFrom):
                origin = _resolve_from_import(self.module, self.is_package, node)
                if origin is None:
                    continue
                add(origin)
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    # `from pkg import mod` may bind a submodule: record
                    # the candidate edge; the graph keeps real modules
                    add(f"{origin}.{alias.name}")
                    self._symbol_imports[alias.asname or alias.name] = (
                        origin,
                        alias.name,
                    )

    # -- call resolution ----------------------------------------------------

    def resolve_call(self, node: ast.Call) -> tuple[str, str] | None:
        """``(module, function)`` a call refers to, when statically clear."""
        func = node.func
        if isinstance(func, ast.Name):
            if func.id in self._symbol_imports:
                return self._symbol_imports[func.id]
            if func.id in self._local_functions:
                return (self.module, func.id)
            return None
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            base = func.value.id
            if base in self._module_aliases:
                return (self._module_aliases[base], func.attr)
            # `from repro import core; core.fn(...)` — submodule binding
            origin = self._symbol_imports.get(base)
            if origin is not None:
                return (f"{origin[0]}.{origin[1]}", func.attr)
        return None

    # -- functions ----------------------------------------------------------

    def _function_summaries(self) -> Iterator[FunctionSummary]:
        for node, qualname in self._functions_with_qualnames():
            returns = self._returns_of(node)
            returns_float = self._annotated_float(node)
            deps: list[tuple[str, str]] = []
            seed_provs: list[SeedProv] = []
            for ret in returns:
                if ret.value is None:
                    continue
                if self.ctx.types.kind_of(ret.value) == FLOAT:
                    returns_float = True
                if isinstance(ret.value, ast.Call):
                    dep = self.resolve_call(ret.value)
                    if dep is not None and dep not in deps:
                        deps.append(dep)
                seed_provs.append(self.prov.prov_of(ret.value))
            yield FunctionSummary(
                qualname=qualname,
                returns_float=returns_float,
                return_call_deps=tuple(deps),
                return_seed_provs=tuple(seed_provs),
                holds_lock=self._holds_lock(node),
            )

    def _functions_with_qualnames(
        self,
    ) -> Iterator[tuple[ast.FunctionDef | ast.AsyncFunctionDef, str]]:
        for node in self.ctx.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield node, node.name
            elif isinstance(node, ast.ClassDef):
                for sub in node.body:
                    if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        yield sub, f"{node.name}.{sub.name}"

    @staticmethod
    def _annotated_float(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
        return isinstance(fn.returns, ast.Name) and fn.returns.id == "float"

    def _returns_of(
        self, fn: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> list[ast.Return]:
        out = []
        for sub in ast.walk(fn):
            if isinstance(sub, ast.Return) and self._nearest_function(sub) is fn:
                out.append(sub)
        return out

    def _nearest_function(self, node: ast.AST) -> ast.AST | None:
        for parent in self.ctx.parents(node):
            if isinstance(parent, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return parent
        return None

    def _holds_lock(self, fn: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
        from .rules.rep006_lock_discipline import _mentions_lock

        for sub in ast.walk(fn):
            if isinstance(sub, ast.With) and any(
                _mentions_lock(item.context_expr) for item in sub.items
            ):
                return True
        return False

    # -- pending sites -------------------------------------------------------

    def _comparison_sites(self) -> Iterator[ComparisonSite]:
        from .rules.rep001_float_compare import _guards_raise, _is_exempt_literal

        for node in ast.walk(self.ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for i, op in enumerate(node.ops):
                op_text = _FLAGGED_CMP_OPS.get(type(op))
                if op_text is None:
                    continue
                left, right = operands[i], operands[i + 1]
                if _is_exempt_literal(left) or _is_exempt_literal(right):
                    continue
                left_desc = self._operand_desc(left)
                right_desc = self._operand_desc(right)
                if "call" not in (left_desc[0], right_desc[0]):
                    continue  # both local: REP001's territory
                if _guards_raise(self.ctx, node):
                    continue
                line = node.lineno
                yield ComparisonSite(
                    line=line,
                    col=node.col_offset + 1,
                    end_line=self.ctx.statement_span(node)[1],
                    snippet=self.ctx.snippet(line),
                    op_text=op_text,
                    left=left_desc,
                    right=right_desc,
                )

    def _operand_desc(self, expr: ast.expr) -> tuple[str, str, str]:
        if self.ctx.types.kind_of(expr) == FLOAT:
            return ("float", "", "")
        if isinstance(expr, ast.Call):
            resolved = self.resolve_call(expr)
            if resolved is not None:
                return ("call", resolved[0], resolved[1])
        return ("other", "", "")

    def _rng_sites(self) -> Iterator[RNGSite]:
        for node in ast.walk(self.ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            constructor = _rng_constructor(self.ctx, node.func)
            if constructor is None:
                continue
            args = list(node.args) + [kw.value for kw in node.keywords]
            if not args:
                continue  # REP002 already flags the unseeded form
            prov = combine_provs([self.prov.prov_of(a) for a in args])
            line = node.lineno
            yield RNGSite(
                line=line,
                col=node.col_offset + 1,
                end_line=self.ctx.statement_span(node)[1],
                snippet=self.ctx.snippet(line),
                constructor=constructor,
                prov=prov,
            )

    # -- assembly ------------------------------------------------------------

    def build(self) -> ModuleSummary:
        return ModuleSummary(
            module=self.module,
            path=self.ctx.path,
            is_package=self.is_package,
            first_line=self.ctx.snippet(1),
            imports=tuple(self._imports),
            symbol_imports=tuple(
                (name, mod, orig)
                for name, (mod, orig) in sorted(self._symbol_imports.items())
            ),
            functions=tuple(self._function_summaries()),
            comparisons=tuple(self._comparison_sites()),
            rng_sites=tuple(self._rng_sites()),
        )


def build_module_summary(ctx: FileContext) -> ModuleSummary:
    """Summarize one parsed module (phase 1's interprocedural output)."""
    return _SummaryBuilder(ctx).build()
