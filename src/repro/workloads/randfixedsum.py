"""Stafford's RandFixedSum: uniform vectors with a fixed sum and bounds.

Draws ``n`` values, each in ``[a, b]``, summing exactly to ``s``,
uniformly over that polytope.  Unlike UUniFast it supports per-coordinate
bounds directly (no rejection), which matters for heavily constrained
draws — e.g. "30 tasks, total utilization 12, every task between 0.1 and
0.9" — where rejection sampling would practically never terminate.

This is a port of Roger Stafford's MATLAB ``randfixedsum`` (2006), the
generator recommended for multiprocessor schedulability studies by
Emberson, Stafford & Davis (WATERS 2010).  The algorithm conditions on
which integer-simplex cell the point falls into (the ``w``/``t`` tables
below carry the cell volumes / transition probabilities) and then samples
the cell uniformly.
"""

from __future__ import annotations

import numpy as np

__all__ = ["randfixedsum"]


def _randfixedsum_unit(
    rng: np.random.Generator, n: int, s: float, nsets: int
) -> np.ndarray:
    """Uniform (n, nsets) matrix: columns sum to ``s``, entries in [0, 1].

    Requires ``0 <= s <= n`` and ``n >= 1``.
    """
    if n == 1:
        return np.full((1, nsets), s)

    k = int(max(min(np.floor(s), n - 1), 0))
    s = max(min(s, k + 1), k)

    s1 = s - np.arange(k, k - n, -1, dtype=float)
    s2 = np.arange(k + n, k, -1, dtype=float) - s

    tiny = np.finfo(float).tiny
    huge = np.finfo(float).max

    w = np.zeros((n, n + 1))
    w[0, 1] = huge
    t = np.zeros((n - 1, n))
    for i in range(2, n + 1):
        tmp1 = w[i - 2, 1 : i + 1] * s1[:i] / float(i)
        tmp2 = w[i - 2, 0:i] * s2[n - i : n] / float(i)
        w[i - 1, 1 : i + 1] = tmp1 + tmp2
        tmp3 = w[i - 1, 1 : i + 1] + tiny
        tmp4 = s2[n - i : n] > s1[:i]
        t[i - 2, 0:i] = (tmp2 / tmp3) * tmp4 + (1.0 - tmp1 / tmp3) * (~tmp4)

    x = np.zeros((n, nsets))
    rt = rng.uniform(size=(n - 1, nsets))  # simplex-type choices
    rs = rng.uniform(size=(n - 1, nsets))  # position within the simplex
    s_arr = np.full(nsets, s)
    j_arr = np.full(nsets, k + 1, dtype=int)
    sm = np.zeros(nsets)
    pr = np.ones(nsets)

    for i in range(n - 1, 0, -1):
        e = (rt[n - i - 1, :] <= t[i - 1, j_arr - 1]).astype(float)
        sx = rs[n - i - 1, :] ** (1.0 / i)
        sm = sm + (1.0 - sx) * pr * s_arr / (i + 1)
        pr = sx * pr
        x[n - i - 1, :] = sm + pr * e
        s_arr = s_arr - e
        j_arr = j_arr - e.astype(int)

    x[n - 1, :] = sm + pr * s_arr

    # Uniformity requires a random coordinate permutation per column.
    for col in range(nsets):
        x[:, col] = x[rng.permutation(n), col]
    return x


def randfixedsum(
    rng: np.random.Generator,
    n: int,
    total: float,
    *,
    low: float = 0.0,
    high: float = 1.0,
    nsets: int = 1,
) -> np.ndarray:
    """Draw ``nsets`` vectors of ``n`` values in ``[low, high]`` summing to
    ``total``, uniformly over the constraint polytope.

    Returns
    -------
    numpy.ndarray
        Shape ``(nsets, n)``.

    Raises
    ------
    ValueError
        if the polytope is empty (``total`` outside ``[n*low, n*high]``)
        or the bounds are degenerate.
    """
    if n < 1:
        raise ValueError("n must be positive")
    if nsets < 1:
        raise ValueError("nsets must be positive")
    if not high > low:
        raise ValueError(f"need high > low, got [{low}, {high}]")
    span = high - low
    s_unit = (total - n * low) / span
    if not -1e-12 <= s_unit <= n + 1e-12:
        raise ValueError(
            f"total={total} is outside the feasible range "
            f"[{n * low}, {n * high}] for n={n}, bounds [{low}, {high}]"
        )
    s_unit = min(max(s_unit, 0.0), float(n))
    x = _randfixedsum_unit(rng, n, s_unit, nsets)
    return (low + span * x).T
