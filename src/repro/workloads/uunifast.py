"""UUniFast and UUniFast-Discard utilization generators.

UUniFast (Bini & Buttazzo, 2005) draws ``n`` task utilizations uniformly
from the simplex ``{u : sum u_i = U, u_i >= 0}``.  It is the standard
generator for schedulability studies because it is unbiased over the
simplex, unlike naive normalization.

UUniFast-Discard (Davis & Burns) rejects and redraws any vector with a
coordinate above ``u_max``, giving a uniform draw over the truncated
simplex — needed when total utilization exceeds 1 (multiprocessor
studies) or when per-task caps matter.
"""

from __future__ import annotations

import numpy as np

__all__ = ["uunifast", "uunifast_discard"]


def uunifast(rng: np.random.Generator, n: int, total_utilization: float) -> np.ndarray:
    """Draw ``n`` utilizations summing to ``total_utilization``.

    Parameters
    ----------
    rng:
        Source of randomness (``numpy.random.Generator``).
    n:
        Number of tasks; must be positive.
    total_utilization:
        Target sum; must be positive.

    Returns
    -------
    numpy.ndarray
        Shape ``(n,)``, entries positive (almost surely), summing to
        ``total_utilization``.
    """
    if n < 1:
        raise ValueError("n must be positive")
    if total_utilization <= 0:
        raise ValueError("total_utilization must be positive")
    utils = np.empty(n)
    remaining = total_utilization
    for i in range(n - 1):
        next_remaining = remaining * rng.random() ** (1.0 / (n - 1 - i))
        utils[i] = remaining - next_remaining
        remaining = next_remaining
    utils[n - 1] = remaining
    return utils


def uunifast_discard(
    rng: np.random.Generator,
    n: int,
    total_utilization: float,
    *,
    u_max: float = 1.0,
    max_attempts: int = 10_000,
) -> np.ndarray:
    """UUniFast with rejection of vectors exceeding ``u_max`` per task.

    Raises
    ------
    ValueError
        if the target is impossible (``total_utilization > n * u_max``)
        or uncomfortably tight (rejection would almost never terminate).
    RuntimeError
        if ``max_attempts`` rejections occur (pathologically tight target).
    """
    if u_max <= 0:
        raise ValueError("u_max must be positive")
    if total_utilization > n * u_max:
        raise ValueError(
            f"cannot split U={total_utilization} into {n} tasks of <= {u_max}"
        )
    for _ in range(max_attempts):
        utils = uunifast(rng, n, total_utilization)
        if (utils <= u_max).all():
            return utils
    raise RuntimeError(
        f"uunifast_discard: gave up after {max_attempts} attempts "
        f"(n={n}, U={total_utilization}, u_max={u_max})"
    )
