"""Experiment campaign descriptors: reproducible parameter sweeps.

A :class:`Campaign` is a named cartesian parameter grid plus a base seed;
iterating it yields one :class:`Trial` per (grid point, replication) with
a deterministic per-trial RNG, so any single trial can be re-run in
isolation from its coordinates alone.
"""

from __future__ import annotations

import itertools
import zlib
from dataclasses import dataclass
from typing import Any, Iterator, Mapping, Sequence

import numpy as np

__all__ = ["Trial", "Campaign", "campaign_seed", "utilization_grid"]


@dataclass(frozen=True)
class Trial:
    """One point of a campaign: parameters, replication index, and RNG."""

    params: Mapping[str, Any]
    replication: int
    seed: int

    def rng(self) -> np.random.Generator:
        """Fresh deterministic generator for this trial."""
        return np.random.default_rng(self.seed)


@dataclass(frozen=True)
class Campaign:
    """A named cartesian sweep.

    Parameters
    ----------
    name:
        Campaign identifier (folded into per-trial seeds).
    grid:
        Mapping of parameter name to the values to sweep.
    replications:
        Trials per grid point.
    base_seed:
        Root of the deterministic seed derivation.
    """

    name: str
    grid: Mapping[str, Sequence[Any]]
    replications: int = 20
    base_seed: int = 2016  # the paper's year

    def __post_init__(self) -> None:
        if self.replications < 1:
            raise ValueError("replications must be positive")
        if not self.grid:
            raise ValueError("grid must have at least one parameter")

    def points(self) -> list[dict[str, Any]]:
        """All grid points, in deterministic order."""
        keys = list(self.grid)
        return [
            dict(zip(keys, combo))
            for combo in itertools.product(*(self.grid[k] for k in keys))
        ]

    def __iter__(self) -> Iterator[Trial]:
        for pi, params in enumerate(self.points()):
            for rep in range(self.replications):
                seed = self._trial_seed(pi, rep)
                yield Trial(params=params, replication=rep, seed=seed)

    def __len__(self) -> int:
        return len(self.points()) * self.replications

    def _trial_seed(self, point_index: int, replication: int) -> int:
        # SeedSequence gives well-mixed independent streams per trial.
        # The name is folded in through crc32, a *stable* digest: builtin
        # hash() varies with PYTHONHASHSEED across interpreter processes,
        # which would give every pool worker (and every rerun) different
        # trial seeds.
        name_digest = zlib.crc32(self.name.encode("utf-8"))
        ss = np.random.SeedSequence(
            [self.base_seed, name_digest, point_index, replication]
        )
        return int(ss.generate_state(1)[0])


def campaign_seed(seed: int | np.integer | np.random.Generator) -> int:
    """Normalize a campaign root seed.

    Accepts either an integer seed (used as-is, the reproducible way to
    drive a sweep) or a ``numpy`` Generator for backwards compatibility
    with rng-threading callers: one integer is drawn from it, so
    successive sweeps sharing a generator get distinct-but-deterministic
    campaigns.
    """
    if isinstance(seed, (int, np.integer)):
        return int(seed)
    if isinstance(seed, np.random.Generator):
        return int(seed.integers(0, 2**63 - 1))
    raise TypeError(
        f"seed must be an int or numpy Generator, got {type(seed).__name__}"
    )


def utilization_grid(
    lo: float = 0.1, hi: float = 1.0, steps: int = 10
) -> list[float]:
    """Evenly spaced normalized-utilization targets for acceptance sweeps."""
    if steps < 2:
        raise ValueError("steps must be at least 2")
    if not 0 < lo < hi:
        raise ValueError("need 0 < lo < hi")
    return [lo + (hi - lo) * i / (steps - 1) for i in range(steps)]
