"""Period generators.

Periods in schedulability studies are conventionally drawn log-uniformly
across a few orders of magnitude (Emberson et al., WATERS 2010), so that
every decade of timescales is equally represented.  Harmonic period sets
(each period divides the next) are provided too: they are RMS's best case
and keep hyperperiods small for exhaustive simulation.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = [
    "log_uniform_periods",
    "harmonic_periods",
    "choice_periods",
    "deadline_ratios",
]


def log_uniform_periods(
    rng: np.random.Generator,
    n: int,
    *,
    p_min: float = 10.0,
    p_max: float = 1000.0,
    granularity: float | None = None,
) -> np.ndarray:
    """``n`` periods log-uniform on ``[p_min, p_max]``.

    Parameters
    ----------
    granularity:
        If given, round each period *up* to a multiple of this value
        (e.g. ``granularity=1`` yields integer periods, keeping
        hyperperiods finite for exhaustive simulation).
    """
    if n < 1:
        raise ValueError("n must be positive")
    if not 0 < p_min <= p_max:
        raise ValueError(f"need 0 < p_min <= p_max, got [{p_min}, {p_max}]")
    periods = np.exp(rng.uniform(math.log(p_min), math.log(p_max), size=n))
    if granularity is not None:
        if granularity <= 0:
            raise ValueError("granularity must be positive")
        periods = np.ceil(periods / granularity) * granularity
    return periods


def harmonic_periods(
    rng: np.random.Generator,
    n: int,
    *,
    base: float = 10.0,
    levels: int = 5,
) -> np.ndarray:
    """``n`` periods of the form ``base * 2**k``, ``k`` uniform on
    ``0..levels-1`` — a harmonic chain (every pair divides)."""
    if n < 1:
        raise ValueError("n must be positive")
    if levels < 1:
        raise ValueError("levels must be positive")
    if base <= 0:
        raise ValueError("base must be positive")
    ks = rng.integers(0, levels, size=n)
    return base * np.exp2(ks).astype(float)


def choice_periods(
    rng: np.random.Generator, n: int, choices: list[float]
) -> np.ndarray:
    """``n`` periods drawn uniformly from an explicit menu."""
    if not choices:
        raise ValueError("choices must be non-empty")
    if any(c <= 0 for c in choices):
        raise ValueError("all period choices must be positive")
    return rng.choice(np.asarray(choices, dtype=float), size=n)


def deadline_ratios(
    rng: np.random.Generator,
    n: int,
    *,
    distribution: str = "uniform",
    dr_min: float = 0.5,
    dr_max: float = 1.0,
) -> np.ndarray:
    """``n`` deadline/period ratios ``d_i / p_i`` on ``[dr_min, dr_max]``.

    ``'uniform'`` draws the ratio linearly (the common constrained-
    deadline benchmark convention); ``'loguniform'`` equalizes decades,
    emphasizing tight deadlines the way :func:`log_uniform_periods`
    emphasizes short periods.  ``dr_max <= 1`` keeps every deadline
    constrained (``d <= p``); values above 1 yield arbitrary deadlines.
    """
    if n < 1:
        raise ValueError("n must be positive")
    if not 0 < dr_min <= dr_max:
        raise ValueError(
            f"need 0 < dr_min <= dr_max, got [{dr_min}, {dr_max}]"
        )
    if distribution == "uniform":
        return rng.uniform(dr_min, dr_max, size=n)
    if distribution == "loguniform":
        return np.exp(rng.uniform(math.log(dr_min), math.log(dr_max), size=n))
    raise ValueError(f"unknown deadline-ratio distribution {distribution!r}")
