"""Named workload suites modelled on published benchmark descriptions.

The paper has no workloads of its own; for examples and integration
tests we provide two structured suites patterned after well-known public
characterizations (synthetic — no proprietary data involved):

* :func:`avionics_suite` — an ARINC-653-style harmonic rate group set
  (25/50/100/200 Hz analogues) with fixed utilizations per rate group,
  the classic easy case for RMS;
* :func:`automotive_suite` — period distribution after Kramer, Dürr &
  Brüggen's "Real World Automotive Benchmarks for Free" (periods in
  {1, 2, 5, 10, 20, 50, 100, 200, 1000} ms with their published share
  weights), utilizations drawn per runnable.
"""

from __future__ import annotations

import numpy as np

from ..core.model import Task, TaskSet
from .uunifast import uunifast

__all__ = ["avionics_suite", "automotive_suite", "AUTOMOTIVE_PERIOD_SHARES"]


def avionics_suite(*, utilization_per_group: float = 0.15) -> TaskSet:
    """A 12-task harmonic rate-group set (periods 5, 10, 20, 40 ms).

    Four rate groups of three tasks each; each group carries
    ``utilization_per_group`` total utilization, split 50/30/20.  Total
    utilization = ``4 * utilization_per_group``.  Harmonic periods keep
    hyperperiods tiny (40), so the suite simulates exhaustively.
    """
    if not 0 < utilization_per_group <= 0.25:
        raise ValueError("utilization_per_group must be in (0, 0.25]")
    splits = (0.5, 0.3, 0.2)
    tasks: list[Task] = []
    for g, period in enumerate((5.0, 10.0, 20.0, 40.0)):
        for k, frac in enumerate(splits):
            u = utilization_per_group * frac
            tasks.append(
                Task.from_utilization(u, period, name=f"rg{g}.{k}")
            )
    return TaskSet(tasks)


#: Period (ms) -> share of runnables, after Kramer et al. (WATERS 2015).
AUTOMOTIVE_PERIOD_SHARES: dict[float, float] = {
    1.0: 0.03,
    2.0: 0.02,
    5.0: 0.02,
    10.0: 0.25,
    20.0: 0.25,
    50.0: 0.03,
    100.0: 0.20,
    200.0: 0.01,
    1000.0: 0.04,
}
# (the remaining 15% of runnables in the original are angle-synchronous;
# we fold them into the 10 ms bin as the closest periodic equivalent)
_AUTOMOTIVE_FOLD = 0.15


def automotive_suite(
    rng: np.random.Generator,
    n: int = 30,
    *,
    total_utilization: float = 3.0,
) -> TaskSet:
    """``n`` tasks with the automotive period distribution and UUniFast
    utilizations summing to ``total_utilization``."""
    if n < 1:
        raise ValueError("n must be positive")
    periods = list(AUTOMOTIVE_PERIOD_SHARES)
    weights = np.array(list(AUTOMOTIVE_PERIOD_SHARES.values()), dtype=float)
    weights[periods.index(10.0)] += _AUTOMOTIVE_FOLD
    weights = weights / weights.sum()
    drawn = rng.choice(np.array(periods), size=n, p=weights)
    utils = uunifast(rng, n, total_utilization)
    return TaskSet(
        Task.from_utilization(float(u), float(p), name=f"runnable{i}")
        for i, (u, p) in enumerate(zip(utils, drawn))
    )
