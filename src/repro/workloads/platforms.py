"""Heterogeneous (related-machines) platform generators.

The paper's motivation (§I) is platforms mixing many slow/low-power cores
with a few fast ones.  We provide the platform shapes the evaluation
sweeps over:

* identical — the degenerate baseline,
* geometric — speeds in geometric progression with a chosen max/min ratio,
* big.LITTLE — two clusters of identical cores,
* random — speeds drawn uniformly or log-uniformly from a range.

``normalized`` rescales a platform to a target total speed so that
heterogeneity sweeps hold aggregate capacity constant (experiment E7).
"""

from __future__ import annotations

import numpy as np

from ..core.model import Machine, Platform

__all__ = [
    "identical_platform",
    "geometric_platform",
    "big_little_platform",
    "random_platform",
    "normalized",
]


def identical_platform(m: int, speed: float = 1.0) -> Platform:
    """``m`` machines of equal ``speed``."""
    return Platform.identical(m, speed)


def geometric_platform(m: int, ratio: float, *, slowest: float = 1.0) -> Platform:
    """``m`` machines with speeds in geometric progression from ``slowest``
    to ``slowest * ratio`` (``ratio`` = heterogeneity ``s_max/s_min``)."""
    if m < 1:
        raise ValueError("need at least one machine")
    if ratio < 1.0:
        raise ValueError("ratio must be >= 1")
    if m == 1:
        return Platform.from_speeds([slowest])
    step = ratio ** (1.0 / (m - 1))
    return Platform.from_speeds([slowest * step**j for j in range(m)])


def big_little_platform(
    n_big: int,
    n_little: int,
    *,
    big_speed: float = 2.0,
    little_speed: float = 1.0,
) -> Platform:
    """A two-cluster platform: ``n_big`` fast cores + ``n_little`` slow cores."""
    if n_big < 0 or n_little < 0 or n_big + n_little < 1:
        raise ValueError("need at least one core")
    machines = [
        Machine(big_speed, name=f"big{j}") for j in range(n_big)
    ] + [Machine(little_speed, name=f"little{j}") for j in range(n_little)]
    return Platform(machines)


def random_platform(
    rng: np.random.Generator,
    m: int,
    *,
    min_speed: float = 1.0,
    max_speed: float = 4.0,
    log_scale: bool = True,
) -> Platform:
    """``m`` machines with speeds drawn from ``[min_speed, max_speed]``,
    log-uniformly by default (uniform in each decade)."""
    if m < 1:
        raise ValueError("need at least one machine")
    if not 0 < min_speed <= max_speed:
        raise ValueError("need 0 < min_speed <= max_speed")
    if log_scale:
        speeds = np.exp(
            rng.uniform(np.log(min_speed), np.log(max_speed), size=m)
        )
    else:
        speeds = rng.uniform(min_speed, max_speed, size=m)
    return Platform.from_speeds(speeds.tolist())


def normalized(platform: Platform, total_speed: float) -> Platform:
    """Rescale every speed so the platform's total speed equals
    ``total_speed`` (shape-preserving)."""
    if total_speed <= 0:
        raise ValueError("total_speed must be positive")
    return platform.scaled(total_speed / platform.total_speed)
