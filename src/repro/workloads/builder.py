"""Task-set builders: turn utilization/period draws into instances.

Besides the plain generator this module builds the *certified* instances
the ratio experiments need:

* :func:`partitioned_feasible_instance` constructs a task set together
  with a witness partition that fits machine capacities at speed 1 — a
  certified partitioned-adversary-feasible instance of any size (the
  existential adversary of Theorems I.1/I.2 made concrete);
* :func:`lp_feasible_instance` draws instances and keeps those the §II LP
  accepts — certified any-adversary-feasible instances for Theorems
  I.3/I.4.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal, Sequence

import numpy as np

from ..core.lp import lp_feasible
from ..core.model import Platform, Task, TaskSet
from .periods import deadline_ratios, log_uniform_periods
from .randfixedsum import randfixedsum
from .uunifast import uunifast, uunifast_discard

__all__ = [
    "taskset_from_utilizations",
    "generate_taskset",
    "PartitionedInstance",
    "partitioned_feasible_instance",
    "constrained_feasible_instance",
    "lp_feasible_instance",
]


def taskset_from_utilizations(
    utilizations: Sequence[float],
    periods: Sequence[float],
    *,
    name_prefix: str = "tau",
) -> TaskSet:
    """Pair utilizations with periods (``wcet = u * p``)."""
    if len(utilizations) != len(periods):
        raise ValueError(
            f"{len(utilizations)} utilizations vs {len(periods)} periods"
        )
    return TaskSet(
        Task.from_utilization(float(u), float(p), name=f"{name_prefix}{i}")
        for i, (u, p) in enumerate(zip(utilizations, periods))
    )


def generate_taskset(
    rng: np.random.Generator,
    n: int,
    total_utilization: float,
    *,
    method: Literal["uunifast", "randfixedsum"] = "uunifast",
    u_min: float = 0.0,
    u_max: float | None = None,
    p_min: float = 10.0,
    p_max: float = 1000.0,
    integer_periods: bool = False,
    dr_dist: Literal["implicit", "uniform", "loguniform"] = "implicit",
    dr_min: float = 0.5,
    dr_max: float = 1.0,
) -> TaskSet:
    """Draw a synthetic task set.

    ``method='uunifast'`` (with optional ``u_max`` -> UUniFast-Discard) or
    ``method='randfixedsum'`` (supports both ``u_min`` and ``u_max``).
    Periods are log-uniform on ``[p_min, p_max]``.

    The deadline-ratio axis: ``dr_dist='implicit'`` (default) leaves
    every deadline equal to its period — the paper's model, and
    bit-compatible with pre-existing pinned seeds since no extra random
    draws happen.  ``'uniform'`` / ``'loguniform'`` draw per-task ratios
    ``d_i/p_i`` from :func:`~repro.workloads.periods.deadline_ratios` on
    ``[dr_min, dr_max]`` and set ``d_i = ratio_i * p_i``; wcets (hence
    utilizations) are untouched, so the sweep isolates the deadline
    axis.
    """
    if method == "uunifast":
        if u_min > 0:
            raise ValueError("u_min requires method='randfixedsum'")
        if u_max is None:
            utils = uunifast(rng, n, total_utilization)
        else:
            utils = uunifast_discard(rng, n, total_utilization, u_max=u_max)
    elif method == "randfixedsum":
        utils = randfixedsum(
            rng,
            n,
            total_utilization,
            low=u_min,
            high=u_max if u_max is not None else max(1.0, total_utilization),
        )[0]
    else:
        raise ValueError(f"unknown method {method!r}")
    periods = log_uniform_periods(
        rng,
        n,
        p_min=p_min,
        p_max=p_max,
        granularity=1.0 if integer_periods else None,
    )
    if dr_dist == "implicit":
        return taskset_from_utilizations(utils, periods)
    ratios = deadline_ratios(
        rng, n, distribution=dr_dist, dr_min=dr_min, dr_max=dr_max
    )
    return TaskSet(
        Task(
            wcet=float(u) * float(p),
            period=float(p),
            deadline=float(r) * float(p),
            name=f"tau{i}",
        )
        for i, (u, p, r) in enumerate(zip(utils, periods, ratios))
    )


@dataclass(frozen=True)
class PartitionedInstance:
    """A task set plus a witness partition proving adversary feasibility."""

    taskset: TaskSet
    platform: Platform
    #: per task index: the witness machine (canonical platform index)
    witness: tuple[int, ...]

    def witness_loads(self) -> list[float]:
        """Utilization per machine under the witness assignment."""
        loads = [0.0] * len(self.platform)
        for i, j in enumerate(self.witness):
            loads[j] += self.taskset[i].utilization
        return loads


def partitioned_feasible_instance(
    rng: np.random.Generator,
    platform: Platform,
    *,
    load: float = 0.95,
    tasks_per_machine: int = 4,
    p_min: float = 10.0,
    p_max: float = 1000.0,
    integer_periods: bool = False,
) -> PartitionedInstance:
    """Construct an instance that is partitioned-EDF feasible at speed 1.

    For each machine ``j`` independently, draw ``tasks_per_machine``
    utilizations summing to ``load * s_j`` (UUniFast), so assigning those
    tasks to machine ``j`` is a valid EDF partition (Theorem II.2).  Task
    order is shuffled so the witness carries no ordering hints.

    These are exactly the instances the partitioned adversary of Theorems
    I.1/I.2 can schedule; first-fit must succeed on them at the theorems'
    speed augmentations.
    """
    if not 0 < load <= 1.0:
        raise ValueError("load must be in (0, 1]")
    if tasks_per_machine < 1:
        raise ValueError("tasks_per_machine must be positive")
    tasks: list[Task] = []
    owners: list[int] = []
    for j, machine in enumerate(platform):
        utils = uunifast(rng, tasks_per_machine, load * machine.speed)
        periods = log_uniform_periods(
            rng,
            tasks_per_machine,
            p_min=p_min,
            p_max=p_max,
            granularity=1.0 if integer_periods else None,
        )
        for u, p in zip(utils, periods):
            tasks.append(Task.from_utilization(float(u), float(p)))
            owners.append(j)
    perm = rng.permutation(len(tasks))
    shuffled = [tasks[i] for i in perm]
    witness = tuple(owners[i] for i in perm)
    named = [
        Task(wcet=t.wcet, period=t.period, name=f"tau{i}")
        for i, t in enumerate(shuffled)
    ]
    return PartitionedInstance(
        taskset=TaskSet(named), platform=platform, witness=witness
    )


def constrained_feasible_instance(
    rng: np.random.Generator,
    platform: Platform,
    *,
    load: float = 0.9,
    tasks_per_machine: int = 4,
    dr_dist: Literal["uniform", "loguniform"] = "uniform",
    dr_min: float = 0.5,
    dr_max: float = 1.0,
    p_min: float = 10.0,
    p_max: float = 1000.0,
    integer_periods: bool = False,
) -> PartitionedInstance:
    """A certified partitioned-EDF-feasible *constrained-deadline* instance.

    The certificate is the density test: for each machine ``j``, draw
    ``tasks_per_machine`` **densities** (``c_i / d_i``) summing to
    ``load * s_j`` via UUniFast, draw deadline ratios on
    ``[dr_min, dr_max]``, and set ``d_i = ratio_i * p_i`` and
    ``c_i = density_i * d_i``.  Then each machine's total density is
    ``load * s_j <= s_j``, which implies EDF feasibility on that machine
    (``dbf(t) <= density * t`` pointwise for ``d <= p``), so the witness
    partition is valid at speed 1 with no redraw loop.  Task order is
    shuffled so the witness carries no ordering hints.
    """
    if not 0 < load <= 1.0:
        raise ValueError("load must be in (0, 1]")
    if tasks_per_machine < 1:
        raise ValueError("tasks_per_machine must be positive")
    if dr_max > 1.0:
        raise ValueError(
            "dr_max must be <= 1 (the density certificate needs d <= p)"
        )
    tasks: list[Task] = []
    owners: list[int] = []
    for j, machine in enumerate(platform):
        densities = uunifast(rng, tasks_per_machine, load * machine.speed)
        periods = log_uniform_periods(
            rng,
            tasks_per_machine,
            p_min=p_min,
            p_max=p_max,
            granularity=1.0 if integer_periods else None,
        )
        ratios = deadline_ratios(
            rng,
            tasks_per_machine,
            distribution=dr_dist,
            dr_min=dr_min,
            dr_max=dr_max,
        )
        for dens, p, r in zip(densities, periods, ratios):
            d = float(r) * float(p)
            tasks.append(
                Task(wcet=float(dens) * d, period=float(p), deadline=d)
            )
            owners.append(j)
    perm = rng.permutation(len(tasks))
    shuffled = [tasks[i] for i in perm]
    witness = tuple(owners[i] for i in perm)
    named = [
        Task(wcet=t.wcet, period=t.period, deadline=t.deadline, name=f"tau{i}")
        for i, t in enumerate(shuffled)
    ]
    return PartitionedInstance(
        taskset=TaskSet(named), platform=platform, witness=witness
    )


def lp_feasible_instance(
    rng: np.random.Generator,
    platform: Platform,
    n: int,
    *,
    stress: float = 0.95,
    p_min: float = 10.0,
    p_max: float = 1000.0,
    max_attempts: int = 200,
) -> TaskSet:
    """Draw an instance certified feasible for the §II LP (any adversary).

    Total utilization is ``stress * total_speed`` with each task capped at
    ``stress * s_max`` (both necessary conditions), then the LP verifies
    feasibility; rejected draws are retried.

    Raises
    ------
    RuntimeError
        if no LP-feasible draw is found in ``max_attempts`` tries (only
        plausible at extreme ``stress`` on pathological platforms).
    """
    if not 0 < stress <= 1.0:
        raise ValueError("stress must be in (0, 1]")
    total = stress * platform.total_speed
    cap = stress * platform.fastest_speed
    for _ in range(max_attempts):
        utils = randfixedsum(rng, n, total, low=0.0, high=min(cap, total))[0]
        periods = log_uniform_periods(rng, n, p_min=p_min, p_max=p_max)
        taskset = taskset_from_utilizations(utils, periods)
        if lp_feasible(taskset, platform):
            return taskset
    raise RuntimeError(
        f"no LP-feasible instance found in {max_attempts} attempts "
        f"(n={n}, stress={stress}, platform={platform!r})"
    )
