"""Synthetic workload generation: utilizations, periods, platforms,
complete instances, and experiment campaigns."""

from .builder import (
    PartitionedInstance,
    constrained_feasible_instance,
    generate_taskset,
    lp_feasible_instance,
    partitioned_feasible_instance,
    taskset_from_utilizations,
)
from .campaigns import Campaign, Trial, campaign_seed, utilization_grid
from .periods import (
    choice_periods,
    deadline_ratios,
    harmonic_periods,
    log_uniform_periods,
)
from .platforms import (
    big_little_platform,
    geometric_platform,
    identical_platform,
    normalized,
    random_platform,
)
from .randfixedsum import randfixedsum
from .suites import AUTOMOTIVE_PERIOD_SHARES, automotive_suite, avionics_suite
from .uunifast import uunifast, uunifast_discard

__all__ = [
    "PartitionedInstance",
    "constrained_feasible_instance",
    "generate_taskset",
    "lp_feasible_instance",
    "partitioned_feasible_instance",
    "taskset_from_utilizations",
    "Campaign",
    "Trial",
    "campaign_seed",
    "utilization_grid",
    "choice_periods",
    "deadline_ratios",
    "harmonic_periods",
    "log_uniform_periods",
    "big_little_platform",
    "geometric_platform",
    "identical_platform",
    "normalized",
    "random_platform",
    "randfixedsum",
    "AUTOMOTIVE_PERIOD_SHARES",
    "automotive_suite",
    "avionics_suite",
    "uunifast",
    "uunifast_discard",
]
