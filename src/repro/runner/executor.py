"""Deterministic trial fan-out over a process pool.

Execution model
---------------
A *campaign* is any finite iterable of trial items (typically
:class:`repro.workloads.campaigns.Trial`), each carrying everything the
per-trial function needs — a seed and a parameter mapping.  The runner:

1. materializes the trials and assigns each its position index;
2. splits them into contiguous chunks (amortizing pool round-trips);
3. executes chunks on ``jobs`` worker processes;
4. places every record back at its trial's index.

Step 4 is the determinism guarantee: the reduction is positional, so the
completion order of workers cannot influence the output.  Combined with
per-trial seeding (no shared RNG stream) the parallel result is
bit-identical to the ``jobs=1`` in-process fast path, which never touches
a pool and therefore costs tests and debugging nothing.

Requirements on the per-trial function: it must be *pure* given the trial
item (no mutable global state), and — for ``jobs > 1`` only — both the
function and its records must be picklable (module-level functions and
``functools.partial`` of them qualify; closures do not).

Failures in workers are re-raised in the parent as :class:`TrialError`
carrying the failing trial's seed and params, always for the *lowest*
failing trial index so error reporting is deterministic too.
"""

from __future__ import annotations

import math
import os
import time
import traceback
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Sequence

from .telemetry import record_stats

__all__ = [
    "TrialError",
    "WorkerStats",
    "RunStats",
    "CampaignRun",
    "resolve_jobs",
    "default_chunk_size",
    "run_trials",
]


class TrialError(RuntimeError):
    """A per-trial function raised; identifies the failing trial."""

    def __init__(
        self,
        message: str,
        *,
        index: int | None = None,
        seed: int | None = None,
        params: Any = None,
    ):
        super().__init__(message)
        self.index = index
        self.seed = seed
        self.params = params


def _trial_error(index: int, item: Any, detail: str) -> TrialError:
    seed = getattr(item, "seed", None)
    params = getattr(item, "params", None)
    return TrialError(
        f"trial {index} failed (seed={seed}, params={dict(params) if params else params}): "
        f"{detail}",
        index=index,
        seed=seed,
        params=params,
    )


@dataclass(frozen=True)
class WorkerStats:
    """Per-worker accounting: how many trials it ran and its CPU time."""

    worker: str
    trials: int
    cpu_time: float


@dataclass(frozen=True)
class RunStats:
    """Throughput measurement for one campaign run.

    ``cpu_time`` sums worker process CPU over the per-trial work only, so
    ``parallel_speedup = cpu_time / wall_time`` measures realized
    parallelism and ``worker_utilization`` how evenly it was spread —
    the speedup is *measured*, never assumed.
    """

    label: str
    trials: int
    jobs: int
    chunks: int
    chunk_size: int
    wall_time: float
    cpu_time: float
    workers: tuple[WorkerStats, ...]

    @property
    def trials_per_second(self) -> float:
        return self.trials / self.wall_time if self.wall_time > 0 else 0.0

    @property
    def parallel_speedup(self) -> float:
        """Aggregate worker CPU per wall second (1.0 = serial pace)."""
        return self.cpu_time / self.wall_time if self.wall_time > 0 else 0.0

    @property
    def worker_utilization(self) -> float:
        """Fraction of the ``jobs``-wide budget spent computing trials."""
        denom = self.wall_time * self.jobs
        return self.cpu_time / denom if denom > 0 else 0.0

    def as_row(self) -> dict[str, Any]:
        """Table-ready summary row."""
        return {
            "campaign": self.label,
            "trials": self.trials,
            "jobs": self.jobs,
            "chunks": self.chunks,
            "wall s": self.wall_time,
            "cpu s": self.cpu_time,
            "trials/s": self.trials_per_second,
            "speedup": self.parallel_speedup,
            "utilization": self.worker_utilization,
        }

    def describe(self) -> str:
        return (
            f"{self.label}: {self.trials} trials on {self.jobs} worker(s) in "
            f"{self.wall_time:.3f}s wall / {self.cpu_time:.3f}s cpu "
            f"({self.trials_per_second:.1f} trials/s, speedup "
            f"{self.parallel_speedup:.2f}x, utilization "
            f"{self.worker_utilization:.0%})"
        )


@dataclass(frozen=True)
class CampaignRun:
    """Records (in trial order) plus the run's throughput stats."""

    records: list[Any]
    stats: RunStats

    def __iter__(self):
        return iter(self.records)

    def __len__(self) -> int:
        return len(self.records)


def resolve_jobs(jobs: int | None) -> int:
    """Normalize a ``--jobs`` value: ``None``/``0`` means all cores."""
    if jobs is None or jobs == 0:
        return os.cpu_count() or 1
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0, got {jobs}")
    return int(jobs)


def default_chunk_size(n_trials: int, jobs: int) -> int:
    """Aim for ~4 chunks per worker: large enough to amortize pool IPC,
    small enough that stragglers rebalance."""
    if n_trials <= 0:
        return 1
    return max(1, math.ceil(n_trials / (4 * max(1, jobs))))


def _run_chunk(
    fn: Callable[[Any], Any], chunk: Sequence[tuple[int, Any]]
) -> tuple[int, float, list[tuple[int, bool, Any]]]:
    """Worker-side loop: run every trial of a chunk, never raise.

    Exceptions become ``(index, False, detail)`` entries so the parent can
    pick the lowest failing index deterministically.
    """
    out: list[tuple[int, bool, Any]] = []
    cpu0 = time.process_time()
    for index, item in chunk:
        try:
            out.append((index, True, fn(item)))
        except Exception:
            out.append((index, False, traceback.format_exc(limit=16)))
    return os.getpid(), time.process_time() - cpu0, out


def _run_chunk_batch(
    batch_fn: Callable[[Sequence[Any]], Sequence[Any]],
    chunk: Sequence[tuple[int, Any]],
) -> tuple[int, float, list[tuple[int, bool, Any]]]:
    """Worker-side batch variant: the whole chunk in one ``batch_fn`` call.

    A failure inside the batch call cannot be pinned to one trial, so it
    is attributed to the chunk's lowest index (deterministic, and the
    batch contract says record ``i`` corresponds to item ``i`` — a batch
    that raises has produced no record for any of them).
    """
    cpu0 = time.process_time()
    try:
        records = list(batch_fn([item for _, item in chunk]))
        if len(records) != len(chunk):
            raise RuntimeError(
                f"batch_fn returned {len(records)} records for "
                f"{len(chunk)} trials"
            )
        out: list[tuple[int, bool, Any]] = [
            (index, True, rec) for (index, _), rec in zip(chunk, records)
        ]
    except Exception:
        detail = traceback.format_exc(limit=16)
        out = [(chunk[0][0], False, detail)]
    return os.getpid(), time.process_time() - cpu0, out


def run_trials(
    fn: Callable[[Any], Any],
    trials: Iterable[Any],
    *,
    jobs: int | None = 1,
    chunk_size: int | None = None,
    label: str = "campaign",
    batch_fn: Callable[[Sequence[Any]], Sequence[Any]] | None = None,
) -> CampaignRun:
    """Execute ``fn`` over every trial, serially or on a process pool.

    Parameters
    ----------
    fn:
        Pure per-trial function ``(trial) -> record``.  Picklable for
        ``jobs > 1`` (module-level function or ``functools.partial``).
    trials:
        Finite iterable of trial items (e.g. a
        :class:`~repro.workloads.campaigns.Campaign`).
    jobs:
        Worker processes; ``1`` (default) runs in-process with zero pool
        overhead, ``None``/``0`` uses every core.
    chunk_size:
        Trials per pool task; default :func:`default_chunk_size`.
    label:
        Name attached to the stats (and any active telemetry context).
    batch_fn:
        Optional batch evaluator ``(items) -> records`` (same length and
        order) that *replaces* ``fn`` for execution — e.g. a
        :mod:`repro.kernels` batch kernel that evaluates a whole chunk in
        one array pass.  Serially the entire campaign is one call; on a
        pool each worker makes one call per chunk.  It must agree with
        ``fn`` record-for-record (``fn`` remains the spec and is used in
        error messages); picklability rules match ``fn``.

    Returns
    -------
    CampaignRun
        ``records[i]`` is ``fn(trials[i])`` regardless of ``jobs``.

    Raises
    ------
    TrialError
        if any trial raised; the lowest-index failure is reported, with
        the trial's seed and params in the message.  A ``batch_fn``
        failure is attributed to the lowest index of the batch it broke.
    """
    items = list(trials)
    n = len(items)
    n_jobs = resolve_jobs(jobs)
    records: list[Any] = [None] * n
    wall0 = time.perf_counter()

    if n_jobs <= 1 or n <= 1:
        cpu0 = time.process_time()
        if batch_fn is not None and n:
            try:
                out = list(batch_fn(items))
                if len(out) != n:
                    raise RuntimeError(
                        f"batch_fn returned {len(out)} records for "
                        f"{n} trials"
                    )
                records = out
            except Exception as exc:
                raise _trial_error(0, items[0], repr(exc)) from exc
        else:
            for i, item in enumerate(items):
                try:
                    records[i] = fn(item)
                except Exception as exc:
                    raise _trial_error(i, item, repr(exc)) from exc
        cpu = time.process_time() - cpu0
        stats = RunStats(
            label=label,
            trials=n,
            jobs=1,
            chunks=1 if n else 0,
            chunk_size=n,
            wall_time=time.perf_counter() - wall0,
            cpu_time=cpu,
            workers=(WorkerStats(f"pid:{os.getpid()}", n, cpu),) if n else (),
        )
        record_stats(stats)
        return CampaignRun(records=records, stats=stats)

    size = chunk_size if chunk_size is not None else default_chunk_size(n, n_jobs)
    if size < 1:
        raise ValueError(f"chunk_size must be positive, got {size}")
    indexed = list(enumerate(items))
    chunks = [indexed[k : k + size] for k in range(0, n, size)]
    per_worker: dict[int, list[float]] = {}  # pid -> [trials, cpu_time]
    failures: list[tuple[int, str]] = []

    with ProcessPoolExecutor(max_workers=min(n_jobs, len(chunks))) as pool:
        if batch_fn is not None:
            futures = [
                pool.submit(_run_chunk_batch, batch_fn, chunk)
                for chunk in chunks
            ]
        else:
            futures = [pool.submit(_run_chunk, fn, chunk) for chunk in chunks]
        # Collect in submission order: chunks still run concurrently, but
        # bookkeeping (and failure selection) stays deterministic.
        for future in futures:
            pid, cpu, results = future.result()
            acc = per_worker.setdefault(pid, [0, 0.0])
            acc[0] += len(results)
            acc[1] += cpu
            for index, ok, payload in results:
                if ok:
                    records[index] = payload
                else:
                    failures.append((index, payload))

    if failures:
        index, detail = min(failures, key=lambda f: f[0])
        raise _trial_error(index, items[index], f"worker traceback:\n{detail}")

    workers = tuple(
        WorkerStats(f"pid:{pid}", int(tr), cpu)
        for pid, (tr, cpu) in sorted(per_worker.items())
    )
    stats = RunStats(
        label=label,
        trials=n,
        jobs=n_jobs,
        chunks=len(chunks),
        chunk_size=size,
        wall_time=time.perf_counter() - wall0,
        cpu_time=sum(w.cpu_time for w in workers),
        workers=workers,
    )
    record_stats(stats)
    return CampaignRun(records=records, stats=stats)
