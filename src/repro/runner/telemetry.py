"""Throughput telemetry for campaign runs.

The executor reports a :class:`~repro.runner.executor.RunStats` for every
campaign it completes.  Callers that want those measurements without
threading a collector through every analysis function open a
:func:`telemetry` context; any run finishing inside it (same thread or
task context) is recorded:

    with telemetry() as tele:
        result = get_experiment("e02")(scale="quick", jobs=4)
    print(tele.render())

The CLI prints this summary to *stderr* so stdout stays byte-identical
across ``--jobs`` values.
"""

from __future__ import annotations

import contextlib
from contextvars import ContextVar
from typing import TYPE_CHECKING, Any, Iterator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from .executor import RunStats

__all__ = ["Telemetry", "telemetry", "active_telemetry", "record_stats"]

_ACTIVE: ContextVar["Telemetry | None"] = ContextVar(
    "repro_runner_telemetry", default=None
)


class Telemetry:
    """Accumulates the stats of every campaign run in a context."""

    def __init__(self) -> None:
        self.runs: list["RunStats"] = []

    def add(self, stats: "RunStats") -> None:
        self.runs.append(stats)

    # -- Aggregates ---------------------------------------------------------
    @property
    def trials(self) -> int:
        return sum(s.trials for s in self.runs)

    @property
    def wall_time(self) -> float:
        return sum(s.wall_time for s in self.runs)

    @property
    def cpu_time(self) -> float:
        return sum(s.cpu_time for s in self.runs)

    @property
    def trials_per_second(self) -> float:
        return self.trials / self.wall_time if self.wall_time > 0 else 0.0

    def summary(self) -> dict[str, Any]:
        """One aggregate row over every recorded run."""
        jobs = max((s.jobs for s in self.runs), default=1)
        return {
            "campaigns": len(self.runs),
            "trials": self.trials,
            "jobs": jobs,
            "wall s": self.wall_time,
            "cpu s": self.cpu_time,
            "trials/s": self.trials_per_second,
            "speedup": self.cpu_time / self.wall_time if self.wall_time > 0 else 0.0,
        }

    def render(self) -> str:
        """Human-readable per-run lines plus the aggregate."""
        lines = ["runner telemetry:"]
        for stats in self.runs:
            lines.append("  " + stats.describe())
        s = self.summary()
        lines.append(
            f"  total: {s['trials']} trials in {s['wall s']:.3f}s wall / "
            f"{s['cpu s']:.3f}s cpu ({s['trials/s']:.1f} trials/s, "
            f"speedup {s['speedup']:.2f}x)"
        )
        return "\n".join(lines)


@contextlib.contextmanager
def telemetry() -> Iterator[Telemetry]:
    """Collect the stats of every campaign run inside the block."""
    collector = Telemetry()
    token = _ACTIVE.set(collector)
    try:
        yield collector
    finally:
        _ACTIVE.reset(token)


def active_telemetry() -> Telemetry | None:
    """The collector of the innermost open :func:`telemetry` block."""
    return _ACTIVE.get()


def record_stats(stats: "RunStats") -> None:
    """Report a finished run to the active collector (no-op without one)."""
    collector = _ACTIVE.get()
    if collector is not None:
        collector.add(stats)
