"""Parallel campaign execution with a serial-identical contract.

The runner fans pure per-trial functions out to a process pool in chunks
and reduces the records back **in trial order**, so ``jobs=1`` and
``jobs=N`` produce bit-identical results whenever the per-trial function
is deterministic in ``(trial.seed, trial.params)``.  See
:mod:`repro.runner.executor` for the execution model and
:mod:`repro.runner.telemetry` for throughput reporting.
"""

from .executor import (
    CampaignRun,
    RunStats,
    TrialError,
    WorkerStats,
    default_chunk_size,
    resolve_jobs,
    run_trials,
)
from .telemetry import Telemetry, active_telemetry, telemetry

__all__ = [
    "CampaignRun",
    "RunStats",
    "TrialError",
    "WorkerStats",
    "default_chunk_size",
    "resolve_jobs",
    "run_trials",
    "Telemetry",
    "active_telemetry",
    "telemetry",
]
