"""Delta-debugging of oracle counterexamples to minimal instances.

Given an instance on which some invariant check fails, greedily apply
verdict-preserving reductions until none applies (or the evaluation
budget runs out):

* drop chunks of tasks (classic ddmin, halving chunk sizes),
* drop a chunk **and rescale** the survivors so total utilization is
  preserved — essential for threshold violations, where plain dropping
  lowers the total below the failing bound and gets stuck far from the
  true minimum,
* drop machines (platforms must keep at least one),
* round wcets, periods, deadlines and speeds to few significant digits,
  so the surviving counterexample prints as human-readable numbers.

The predicate is re-evaluated on every candidate; only reductions that
keep it True are kept, so the result provokes the *same* failure as the
original.  Everything is deterministic: candidates are enumerated in a
fixed order and the first improving one is taken.
"""

from __future__ import annotations

from typing import Callable

from ..core.model import Machine, Platform, Task, TaskSet

__all__ = ["shrink_instance", "ShrinkResult"]

Predicate = Callable[[TaskSet, Platform], bool]


class ShrinkResult:
    """Outcome of a shrink run."""

    __slots__ = ("taskset", "platform", "evaluations", "exhausted")

    def __init__(
        self,
        taskset: TaskSet,
        platform: Platform,
        evaluations: int,
        exhausted: bool,
    ):
        self.taskset = taskset
        self.platform = platform
        self.evaluations = evaluations
        self.exhausted = exhausted


class _Budget:
    __slots__ = ("left", "used")

    def __init__(self, limit: int):
        self.left = limit
        self.used = 0

    def spend(self) -> bool:
        if self.left <= 0:
            return False
        self.left -= 1
        self.used += 1
        return True


def _round_sig(x: float, digits: int) -> float:
    return float(f"%.{digits}g" % x)


def _drop_chunk(taskset: TaskSet, start: int, size: int) -> TaskSet:
    keep = [i for i in range(len(taskset)) if not start <= i < start + size]
    return taskset.subset(keep)


def _task_candidates(taskset: TaskSet):
    """Smaller task sets to try, most aggressive first."""
    n = len(taskset)
    if n <= 1:
        return
    size = n // 2
    while size >= 1:
        for start in range(0, n, size):
            smaller = _drop_chunk(taskset, start, size)
            if len(smaller) == 0:
                continue
            yield smaller
            # rescaled variant: survivors carry the dropped utilization
            total = taskset.total_utilization
            remaining = smaller.total_utilization
            if 0 < remaining < total:
                yield smaller.scaled(total / remaining)
        size //= 2


def _platform_candidates(platform: Platform):
    m = len(platform)
    if m <= 1:
        return
    for j in range(m):
        yield Platform(platform[i] for i in range(m) if i != j)


def _rounding_candidates(taskset: TaskSet, platform: Platform):
    """Same-shape instances with coarser numbers (taskset, platform pairs)."""
    for digits in (1, 2, 3, 6, 12):
        try:
            ts = TaskSet(
                Task(
                    wcet=_round_sig(t.wcet, digits),
                    period=_round_sig(t.period, digits),
                    name=t.name,
                    deadline=(
                        None
                        if t.is_implicit
                        else _round_sig(t.deadline, digits)
                    ),
                )
                for t in taskset
            )
            pf = Platform(
                Machine(speed=_round_sig(m.speed, digits), name=m.name)
                for m in platform
            )
        except ValueError:
            continue  # rounding collapsed a parameter to zero
        if ts != taskset or pf != platform:
            yield ts, pf


def shrink_instance(
    taskset: TaskSet,
    platform: Platform,
    predicate: Predicate,
    *,
    max_evaluations: int = 400,
) -> ShrinkResult:
    """Reduce ``(taskset, platform)`` while ``predicate`` stays True.

    ``predicate`` must be True on the input (ValueError otherwise) —
    shrinking something that does not fail is a caller bug.
    """
    if not predicate(taskset, platform):
        raise ValueError("predicate must hold on the starting instance")
    budget = _Budget(max_evaluations)

    def holds(ts: TaskSet, pf: Platform) -> bool:
        if not budget.spend():
            return False
        try:
            return bool(predicate(ts, pf))
        except Exception:
            # a reduction that *crashes* a check is not the same failure
            return False

    progress = True
    while progress and budget.left > 0:
        progress = False
        for smaller in _task_candidates(taskset):
            if holds(smaller, platform):
                taskset = smaller
                progress = True
                break
        if progress:
            continue
        for pf in _platform_candidates(platform):
            if holds(taskset, pf):
                platform = pf
                progress = True
                break
        if progress:
            continue
        for ts, pf in _rounding_candidates(taskset, platform):
            if holds(ts, pf):
                taskset, platform = ts, pf
                progress = True
                break
    return ShrinkResult(
        taskset, platform, evaluations=budget.used, exhausted=budget.left <= 0
    )
