"""Differential fuzzing campaigns over the oracle invariant lattice.

One *trial* = draw an instance from a generator profile, evaluate it
through every oracle pair, check the configured invariants.  Trials fan
out through :func:`repro.runner.run_trials`, inheriting its determinism
guarantee: per-trial seeds come from the campaign machinery (crc32 +
``SeedSequence``) and the reduction is positional, so a campaign's
findings are bit-identical at any ``--jobs``.

Violations are delta-debugged (:mod:`repro.oracle.shrink`) in the parent
process to minimal counterexamples and persisted as JSON repro cases
under ``results/counterexamples/``; :func:`replay_counterexample` (and
``repro fuzz --replay``) re-runs the recorded invariant on the recorded
instance.

:func:`self_test` closes the loop on the harness itself: it injects a
deliberately broken Liu–Layland test (the ``n`` factor dropped from the
bound) and asserts the lattice catches it and the shrinker reduces the
finding to a ≤3-task, single-machine counterexample.
"""

from __future__ import annotations

import math
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Mapping, Sequence

from ..core.bounds import AdmissionTest, MachineState
from ..core.model import Platform, Task, TaskSet, leq
from ..io_.serialize import (
    instance_digest,
    load_json,
    platform_from_dict,
    platform_to_dict,
    save_json,
    taskset_from_dict,
    taskset_to_dict,
)
from ..runner import run_trials
from ..workloads.campaigns import Campaign, Trial
from .generators import PROFILES, draw_instance
from .invariants import OracleConfig, Violation, check_instance
from .shrink import shrink_instance

__all__ = [
    "COUNTEREXAMPLE_SCHEMA",
    "Counterexample",
    "FuzzReport",
    "run_fuzz",
    "replay_counterexample",
    "SelfTestResult",
    "self_test",
]

#: Schema tag stamped into every persisted counterexample.
COUNTEREXAMPLE_SCHEMA = "repro.oracle.counterexample/v1"


@dataclass(frozen=True)
class _FuzzItem:
    """Picklable unit of fuzz work (crosses the runner's process pool)."""

    trial: Trial
    profiles: tuple[str, ...]
    config: OracleConfig


def _evaluate_trial(item: _FuzzItem) -> dict[str, Any]:
    """One trial: draw, check, report (a plain picklable dict)."""
    rng = item.trial.rng()
    profile = item.profiles[int(rng.integers(0, len(item.profiles)))]
    taskset, platform = draw_instance(rng, profile)
    violations = check_instance(taskset, platform, item.config)
    record: dict[str, Any] = {
        "seed": item.trial.seed,
        "profile": profile,
        "n_tasks": len(taskset),
        "n_machines": len(platform),
        "violations": [v.as_dict() for v in violations],
    }
    if violations:
        record["taskset"] = taskset_to_dict(taskset)
        record["platform"] = platform_to_dict(platform)
    return record


@dataclass(frozen=True)
class Counterexample:
    """One shrunk, persisted lattice violation."""

    invariant: str
    detail: str
    seed: int
    profile: str
    digest: str
    n_tasks: int
    n_machines: int
    path: str | None


@dataclass(frozen=True)
class FuzzReport:
    """Outcome of a fuzz campaign.

    ``summary()`` is a pure function of the findings (no timing, no
    paths' mtimes), so two runs of the same campaign print identical
    text regardless of ``--jobs``.
    """

    seed: int
    trials: int
    violation_trials: int
    profiles: tuple[str, ...]
    checks: tuple[str, ...]
    by_profile: Mapping[str, int]
    counterexamples: tuple[Counterexample, ...]

    @property
    def ok(self) -> bool:
        return self.violation_trials == 0

    def summary(self) -> str:
        lines = [
            f"fuzz campaign: seed={self.seed} trials={self.trials} "
            f"profiles={','.join(self.profiles)}",
            f"checks: {', '.join(self.checks)}",
            "trials per profile: "
            + ", ".join(f"{p}={self.by_profile.get(p, 0)}" for p in self.profiles),
        ]
        if self.ok:
            lines.append("no invariant violations")
        else:
            lines.append(
                f"VIOLATIONS: {self.violation_trials} trial(s) broke the lattice"
            )
            for ce in self.counterexamples:
                lines.append(
                    f"  [{ce.invariant}] seed={ce.seed} profile={ce.profile} "
                    f"shrunk to {ce.n_tasks} task(s) x {ce.n_machines} "
                    f"machine(s) digest={ce.digest[:12]}"
                )
                lines.append(f"    {ce.detail}")
                if ce.path:
                    lines.append(f"    saved: {ce.path}")
        return "\n".join(lines)


def _shrink_predicate(invariant: str, config: OracleConfig):
    """Predicate preserving 'this specific invariant still fails'."""
    narrowed = OracleConfig(
        tests=config.tests,
        overrides=config.overrides,
        checks=(invariant,),
        backends=config.backends,
        margin=config.margin,
        edf_node_limit=config.edf_node_limit,
        rms_node_limit=config.rms_node_limit,
    )

    def predicate(taskset: TaskSet, platform: Platform) -> bool:
        return any(
            v.invariant == invariant
            for v in check_instance(taskset, platform, narrowed)
        )

    return predicate, narrowed


def _config_to_dict(config: OracleConfig) -> dict[str, Any]:
    return {
        "tests": list(config.tests),
        "checks": list(config.active_checks()),
        "backends": list(config.backends),
        "margin": config.margin,
        "edf_node_limit": config.edf_node_limit,
        "rms_node_limit": config.rms_node_limit,
        # override *names* only: the objects carry code, not data
        "overrides": sorted(config.overrides) if config.overrides else [],
    }


def _persist_counterexample(
    out_dir: Path,
    invariant: str,
    violation: dict[str, str],
    taskset: TaskSet,
    platform: Platform,
    record: dict[str, Any],
    config: OracleConfig,
) -> tuple[str, str]:
    digest = instance_digest(taskset, platform)
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / f"{invariant}-{digest[:12]}.json"
    save_json(
        path,
        {
            "schema": COUNTEREXAMPLE_SCHEMA,
            "invariant": invariant,
            "detail": violation["detail"],
            "seed": record["seed"],
            "profile": record["profile"],
            "taskset": taskset_to_dict(taskset),
            "platform": platform_to_dict(platform),
            "digest": digest,
            "original": {
                "n_tasks": record["n_tasks"],
                "n_machines": record["n_machines"],
            },
            "config": _config_to_dict(config),
        },
    )
    return str(path), digest


def run_fuzz(
    *,
    seed: int = 0,
    budget: int = 1000,
    jobs: int | None = 1,
    profiles: Sequence[str] | None = None,
    checks: Sequence[str] | None = None,
    backends: Sequence[str] | None = None,
    config: OracleConfig | None = None,
    shrink: bool = True,
    shrink_budget: int = 400,
    out_dir: str | Path | None = "results/counterexamples",
    campaign_name: str = "oracle-fuzz",
    stats_stream=None,
) -> FuzzReport:
    """Run a differential-fuzzing campaign.

    Parameters
    ----------
    seed, budget, jobs:
        Campaign root seed, number of trials, worker processes (``None``
        or 0 = all cores).  Findings are bit-identical across ``jobs``.
    profiles:
        Generator profiles to draw from (default: all of
        :data:`~repro.oracle.generators.PROFILES`).
    checks:
        Invariant names to check (default: the full lattice); mutually
        exclusive with passing a full ``config``.
    backends:
        Kernel backends the ``backend-equivalence`` invariant audits
        (default: every available one); mutually exclusive with
        ``config``.
    shrink, shrink_budget:
        Delta-debug each violation (in the parent) to a minimal
        counterexample, spending at most ``shrink_budget`` re-evaluations.
    out_dir:
        Where to persist shrunk counterexamples as JSON repro cases
        (``None`` disables persistence).
    stats_stream:
        Where to print the runner's throughput line (default stderr;
        never stdout — timing must not pollute deterministic output).
    """
    if budget < 1:
        raise ValueError("budget must be positive")
    if config is not None and (checks is not None or backends is not None):
        raise ValueError("pass either config or checks/backends, not both")
    if config is None:
        config = OracleConfig(
            checks=tuple(checks) if checks else (),
            backends=tuple(backends) if backends else (),
        )
    profile_tuple = tuple(profiles) if profiles else tuple(PROFILES)
    for p in profile_tuple:
        if p not in PROFILES:
            raise KeyError(f"unknown profile {p!r}; known: {sorted(PROFILES)}")

    campaign = Campaign(
        name=campaign_name,
        grid={"slot": list(range(budget))},
        replications=1,
        base_seed=seed,
    )
    items = [
        _FuzzItem(trial=t, profiles=profile_tuple, config=config)
        for t in campaign
    ]
    run = run_trials(_evaluate_trial, items, jobs=jobs, label=campaign_name)
    print(run.stats.describe(), file=stats_stream or sys.stderr)

    by_profile: dict[str, int] = {}
    counterexamples: list[Counterexample] = []
    violation_trials = 0
    for record in run.records:
        by_profile[record["profile"]] = by_profile.get(record["profile"], 0) + 1
        if not record["violations"]:
            continue
        violation_trials += 1
        taskset = taskset_from_dict(record["taskset"])
        platform = platform_from_dict(record["platform"])
        # one counterexample per distinct broken invariant on this trial
        seen: set[str] = set()
        for violation in record["violations"]:
            invariant = violation["invariant"]
            if invariant in seen:
                continue
            seen.add(invariant)
            small_ts, small_pf, detail = taskset, platform, violation["detail"]
            if shrink:
                predicate, narrowed = _shrink_predicate(invariant, config)
                result = shrink_instance(
                    taskset,
                    platform,
                    predicate,
                    max_evaluations=shrink_budget,
                )
                small_ts, small_pf = result.taskset, result.platform
                fresh = [
                    v
                    for v in check_instance(small_ts, small_pf, narrowed)
                    if v.invariant == invariant
                ]
                if fresh:
                    detail = fresh[0].detail
            path = digest = None
            if out_dir is not None:
                path, digest = _persist_counterexample(
                    Path(out_dir),
                    invariant,
                    {"detail": detail},
                    small_ts,
                    small_pf,
                    record,
                    config,
                )
            else:
                digest = instance_digest(small_ts, small_pf)
            counterexamples.append(
                Counterexample(
                    invariant=invariant,
                    detail=detail,
                    seed=record["seed"],
                    profile=record["profile"],
                    digest=digest,
                    n_tasks=len(small_ts),
                    n_machines=len(small_pf),
                    path=path,
                )
            )
    return FuzzReport(
        seed=seed,
        trials=budget,
        violation_trials=violation_trials,
        profiles=profile_tuple,
        checks=config.active_checks(),
        by_profile=by_profile,
        counterexamples=tuple(counterexamples),
    )


def replay_counterexample(
    path: str | Path, *, config: OracleConfig | None = None
) -> list[Violation]:
    """Re-run a persisted counterexample's invariant on its instance.

    Returns the violations observed *now* — empty means the recorded bug
    no longer reproduces (i.e. it has been fixed).  ``config`` overrides
    the recorded check configuration (needed to replay self-test cases,
    whose broken-test injection cannot be serialized).
    """
    data = load_json(path)
    if data.get("schema") != COUNTEREXAMPLE_SCHEMA:
        raise ValueError(
            f"{path}: not a {COUNTEREXAMPLE_SCHEMA} file "
            f"(schema={data.get('schema')!r})"
        )
    taskset = taskset_from_dict(data["taskset"])
    platform = platform_from_dict(data["platform"])
    if config is None:
        recorded = data.get("config", {})
        config = OracleConfig(
            tests=tuple(recorded.get("tests", OracleConfig().tests)),
            checks=(data["invariant"],),
            backends=tuple(recorded.get("backends", ())),
            margin=float(recorded.get("margin", 1e-6)),
        )
    return [
        v
        for v in check_instance(taskset, platform, config)
        if v.invariant == data["invariant"]
    ]


# ---------------------------------------------------------------------------
# Self-test: inject a known bug, assert the harness catches and shrinks it.
# ---------------------------------------------------------------------------


class _BrokenLLState(MachineState):
    """State for :class:`_BrokenLLTest` (kept one-shot-consistent so the
    injected bug is caught by the *lattice*, not by state drift)."""

    __slots__ = ("_utils",)

    def __init__(self, speed: float):
        super().__init__(speed)
        self._utils: list[float] = []

    def admits(self, task: Task) -> bool:
        n = len(self._utils) + 1
        bound = (2.0 ** (1.0 / n) - 1.0) * self.speed  # missing n factor!
        return leq(math.fsum(self._utils + [task.utilization]), bound)

    def add(self, task: Task) -> None:
        self._utils.append(task.utilization)

    @property
    def load(self) -> float:
        return math.fsum(self._utils)

    @property
    def count(self) -> int:
        return len(self._utils)


class _BrokenLLTest(AdmissionTest):
    """Liu–Layland with the ``n`` factor dropped: bound ``(2^{1/n}-1) s``
    instead of ``n (2^{1/n}-1) s``.  Massively over-rejects for n >= 2,
    so Theorem I.2's accept-side guarantee must fail on RMS-feasible
    instances — the violation the self-test expects the lattice to flag.
    """

    name = "rms-ll"

    def open(self, speed: float) -> MachineState:
        return _BrokenLLState(speed)

    def feasible(self, tasks, speed: float) -> bool:
        n = len(tasks)
        if n == 0:
            return True
        bound = (2.0 ** (1.0 / n) - 1.0) * speed
        return leq(math.fsum(t.utilization for t in tasks), bound)


@dataclass(frozen=True)
class SelfTestResult:
    """What the injected-bug run found."""

    trials_used: int
    caught: bool
    invariant: str | None
    shrunk_tasks: int | None
    shrunk_machines: int | None
    detail: str | None

    @property
    def ok(self) -> bool:
        """Bug caught and shrunk to the expected minimal size."""
        return (
            self.caught
            and (self.shrunk_tasks or 99) <= 3
            and (self.shrunk_machines or 99) <= 1
        )

    def summary(self) -> str:
        if not self.caught:
            return (
                f"SELF-TEST FAILED: injected broken Liu-Layland test was NOT "
                f"caught in {self.trials_used} trials"
            )
        status = "ok" if self.ok else "CAUGHT BUT UNDER-SHRUNK"
        return (
            f"self-test {status}: injected broken rms-ll caught by "
            f"[{self.invariant}] after {self.trials_used} trial(s), shrunk to "
            f"{self.shrunk_tasks} task(s) x {self.shrunk_machines} machine(s)\n"
            f"  {self.detail}"
        )


def self_test(
    *, seed: int = 0, budget: int = 200, shrink_budget: int = 400
) -> SelfTestResult:
    """Fault-injection check of the whole harness.

    Swaps the Liu–Layland admission test for :class:`_BrokenLLTest` and
    fuzzes until the Theorem I.2 speedup invariant flags it, then shrinks
    the finding.  A healthy harness catches the bug within ``budget``
    trials and shrinks it to at most 3 tasks on 1 machine.
    """
    config = OracleConfig(
        tests=("rms-ll",),
        overrides={"rms-ll": _BrokenLLTest()},
        checks=("theorem-speedup",),
    )
    campaign = Campaign(
        name="oracle-self-test",
        grid={"slot": list(range(budget))},
        replications=1,
        base_seed=seed,
    )
    profiles = ("uniform", "tiny", "boundary-rms-ll")
    for used, trial in enumerate(campaign, start=1):
        record = _evaluate_trial(
            _FuzzItem(trial=trial, profiles=profiles, config=config)
        )
        if not record["violations"]:
            continue
        violation = record["violations"][0]
        taskset = taskset_from_dict(record["taskset"])
        platform = platform_from_dict(record["platform"])
        predicate, narrowed = _shrink_predicate(violation["invariant"], config)
        result = shrink_instance(
            taskset, platform, predicate, max_evaluations=shrink_budget
        )
        fresh = [
            v
            for v in check_instance(result.taskset, result.platform, narrowed)
            if v.invariant == violation["invariant"]
        ]
        detail = fresh[0].detail if fresh else violation["detail"]
        return SelfTestResult(
            trials_used=used,
            caught=True,
            invariant=violation["invariant"],
            shrunk_tasks=len(result.taskset),
            shrunk_machines=len(result.platform),
            detail=detail,
        )
    return SelfTestResult(
        trials_used=budget,
        caught=False,
        invariant=None,
        shrunk_tasks=None,
        shrunk_machines=None,
        detail=None,
    )
