"""Differential-testing oracle: invariant lattice, fuzzing, shrinking.

The repo computes every feasibility answer several independent ways
(first-fit theorem tests, exact adversaries, the LP, the service).  This
package cross-examines them: :mod:`~repro.oracle.generators` draws
randomized and boundary-adversarial instances,
:mod:`~repro.oracle.invariants` checks the dominance lattice between the
answers, :mod:`~repro.oracle.shrink` delta-debugs violations to minimal
counterexamples, and :mod:`~repro.oracle.fuzz` runs it all as a
deterministic parallel campaign (``repro fuzz``).
"""

from .fuzz import (
    COUNTEREXAMPLE_SCHEMA,
    Counterexample,
    FuzzReport,
    SelfTestResult,
    replay_counterexample,
    run_fuzz,
    self_test,
)
from .generators import PROFILES, boundary_nudges, draw_instance
from .invariants import (
    CHECKS,
    PER_TEST_CHECKS,
    OracleConfig,
    Violation,
    check_instance,
)
from .shrink import ShrinkResult, shrink_instance

__all__ = [
    "COUNTEREXAMPLE_SCHEMA",
    "Counterexample",
    "FuzzReport",
    "SelfTestResult",
    "replay_counterexample",
    "run_fuzz",
    "self_test",
    "PROFILES",
    "boundary_nudges",
    "draw_instance",
    "CHECKS",
    "PER_TEST_CHECKS",
    "OracleConfig",
    "Violation",
    "check_instance",
    "ShrinkResult",
    "shrink_instance",
]
