"""Instance generation for the differential oracle.

Two kinds of instances feed the fuzzer:

* **randomized** draws reusing the :mod:`repro.workloads` generators
  (UUniFast task sets on identical/geometric/random platforms over a
  wide stress range, including infeasible overloads), and
* **adversarial boundary mutants**: a random draw is rescaled so that
  the quantity an admission test compares sits *exactly on* the test's
  threshold — total utilization on the EDF capacity, on the Liu–Layland
  bound, the hyperbolic product on 2, or the instance total on the
  platform capacity — then nudged by a few multiples of the comparison
  tolerance :data:`~repro.core.model.EPS` so draws land on every side of
  the tolerance window.  These are precisely the instances where
  incremental/one-shot float drift or inconsistent tolerance conventions
  flip verdicts.

Everything is a pure function of the supplied ``numpy`` Generator, so a
trial is reproducible from its seed alone.
"""

from __future__ import annotations

import math

import numpy as np

from ..core.bounds import liu_layland_bound
from ..core.model import Platform, Task, TaskSet
from ..workloads.builder import generate_taskset
from ..workloads.platforms import (
    geometric_platform,
    identical_platform,
    random_platform,
)

__all__ = [
    "PROFILES",
    "draw_platform",
    "draw_instance",
    "scale_total_to",
    "scale_hyperbolic_to",
    "boundary_nudges",
]

#: Multiplicative nudges applied after scaling onto a threshold: exact
#: boundary, inside/outside the EPS tolerance window, and clearly beyond
#: it.  (EPS is 1e-9; 5e-10 lands inside the window, 2e-9/8e-9 outside.)
_NUDGES = (0.0, -5e-10, 5e-10, -2e-9, 2e-9, -8e-9, 8e-9)


def boundary_nudges() -> tuple[float, ...]:
    """The menu of relative offsets used by the boundary profiles."""
    return _NUDGES


def scale_total_to(taskset: TaskSet, target: float) -> TaskSet:
    """Rescale every wcet so total utilization lands on ``target``."""
    total = taskset.total_utilization
    if total <= 0 or target <= 0:
        raise ValueError("need positive utilizations and target")
    return taskset.scaled(target / total)


def scale_hyperbolic_to(
    taskset: TaskSet, speed: float, target: float = 2.0
) -> TaskSet:
    """Rescale so ``prod (w_i/speed + 1)`` lands on ``target`` (bisection)."""
    if len(taskset) == 0:
        raise ValueError("need at least one task")

    def product(factor: float) -> float:
        prod = 1.0
        for t in taskset:
            prod *= factor * t.utilization / speed + 1.0
        return prod

    lo, hi = 0.0, 1.0
    while product(hi) < target:
        hi *= 2.0
        if hi > 1e9:  # pragma: no cover - utilizations are positive
            raise RuntimeError("hyperbolic scaling diverged")
    for _ in range(200):
        mid = 0.5 * (lo + hi)
        if product(mid) < target:
            lo = mid
        else:
            hi = mid
    return taskset.scaled(hi)


def draw_platform(rng: np.random.Generator, *, max_machines: int = 3) -> Platform:
    """A small platform of one of the evaluation's shapes."""
    m = int(rng.integers(1, max_machines + 1))
    shape = int(rng.integers(0, 3))
    if shape == 0 or m == 1:
        return identical_platform(m, speed=float(rng.uniform(0.5, 2.0)))
    if shape == 1:
        return geometric_platform(m, ratio=float(rng.uniform(1.5, 8.0)))
    return random_platform(rng, m, min_speed=0.5, max_speed=4.0)


def _base_taskset(
    rng: np.random.Generator, platform: Platform, *, n: int, stress: float
) -> TaskSet:
    target = stress * platform.total_speed
    # Cap per-task utilization at the fastest speed only when the cap
    # leaves the rejection sampler comfortable headroom; tight or
    # impossible caps (few tasks on a heterogeneous platform) fall back
    # to the uncapped draw — over-utilized tasks are legitimate fuzz
    # input, every check handles infeasible instances.
    u_max = platform.fastest_speed
    if target <= 0.75 * n * u_max:
        return generate_taskset(rng, n, target, u_max=u_max)
    return generate_taskset(rng, n, target)


def _uniform(rng: np.random.Generator) -> tuple[TaskSet, Platform]:
    """Random instance over a wide stress range (including overloads)."""
    platform = draw_platform(rng)
    n = int(rng.integers(1, 9))
    stress = float(rng.uniform(0.2, 1.15))
    return _base_taskset(rng, platform, n=n, stress=stress), platform


def _tiny(rng: np.random.Generator) -> tuple[TaskSet, Platform]:
    """Few tasks, coarse parameters — the exact adversaries' home turf."""
    platform = identical_platform(
        int(rng.integers(1, 3)), speed=float(rng.integers(1, 4))
    )
    n = int(rng.integers(1, 4))
    tasks = []
    for i in range(n):
        period = float(rng.integers(2, 17))
        wcet = float(rng.integers(1, max(2, int(period))))
        tasks.append(Task(wcet=wcet, period=period, name=f"tau{i}"))
    return TaskSet(tasks), platform


def _nudge(rng: np.random.Generator) -> float:
    return 1.0 + _NUDGES[int(rng.integers(0, len(_NUDGES)))]


def _boundary_edf(rng: np.random.Generator) -> tuple[TaskSet, Platform]:
    """Total utilization pushed onto one machine's EDF capacity."""
    platform = identical_platform(1, speed=float(rng.uniform(0.5, 2.0)))
    n = int(rng.integers(1, 9))
    taskset = _base_taskset(rng, platform, n=n, stress=0.8)
    target = platform[0].speed * _nudge(rng)
    return scale_total_to(taskset, target), platform


def _boundary_rms_ll(rng: np.random.Generator) -> tuple[TaskSet, Platform]:
    """Total utilization pushed onto the Liu–Layland bound."""
    platform = identical_platform(1, speed=float(rng.uniform(0.5, 2.0)))
    n = int(rng.integers(1, 9))
    taskset = _base_taskset(rng, platform, n=n, stress=0.6)
    target = liu_layland_bound(n) * platform[0].speed * _nudge(rng)
    return scale_total_to(taskset, target), platform


def _boundary_rms_hyperbolic(
    rng: np.random.Generator,
) -> tuple[TaskSet, Platform]:
    """Hyperbolic product pushed onto 2 (then tolerance-nudged)."""
    platform = identical_platform(1, speed=float(rng.uniform(0.5, 2.0)))
    n = int(rng.integers(1, 9))
    taskset = _base_taskset(rng, platform, n=n, stress=0.6)
    scaled = scale_hyperbolic_to(taskset, platform[0].speed, target=2.0)
    return scaled.scaled(_nudge(rng)), platform


def _boundary_capacity(rng: np.random.Generator) -> tuple[TaskSet, Platform]:
    """Multi-machine: total utilization pushed onto total platform speed."""
    platform = draw_platform(rng)
    n = int(rng.integers(max(2, len(platform)), 10))
    taskset = _base_taskset(rng, platform, n=n, stress=0.9)
    target = platform.total_speed * _nudge(rng)
    taskset = scale_total_to(taskset, target)
    if taskset.max_utilization > platform.fastest_speed:
        # keep the single-task necessary condition satisfiable sometimes
        if rng.integers(0, 2):
            taskset = taskset.scaled(
                platform.fastest_speed / taskset.max_utilization
            )
    return taskset, platform


def _constrained(rng: np.random.Generator) -> tuple[TaskSet, Platform]:
    """Constrained-deadline instances across the deadline-ratio axis.

    Per-task ``d_i/p_i`` ratios drawn uniform or log-uniform on a range
    whose lower end varies per trial, at stresses spanning feasible to
    overloaded — the home turf of the ``edf-dbf``/``han-zhao``/
    ``chen-dm`` family and the constrained lattice checks.
    """
    platform = draw_platform(rng)
    n = int(rng.integers(1, 7))
    stress = float(rng.uniform(0.3, 1.1))
    dr_min = float(rng.uniform(0.3, 0.9))
    dr_dist = "uniform" if rng.integers(0, 2) else "loguniform"
    return (
        generate_taskset(
            rng,
            n,
            stress * platform.total_speed,
            dr_dist=dr_dist,  # type: ignore[arg-type]
            dr_min=dr_min,
            dr_max=1.0,
        ),
        platform,
    )


def _boundary_qpa(rng: np.random.Generator) -> tuple[TaskSet, Platform]:
    """Machine speed pushed onto the exact processor-demand threshold.

    Small integer-parameter constrained sets, with the (single) machine
    speed set to ``max_t dbf(t)/t`` over the demand points in one
    hyperperiod — the critical speed ``s*`` at which the set is exactly
    feasible — then tolerance-nudged.  Lands QPA's fixed-point iteration
    exactly on the ``dbf(t) <= s t`` boundary at step points ``d + k p``,
    where the pre-PR-8 absolute-EPS floor/gate bugs lived.
    """
    from ..core.dbf import dbf_taskset, demand_points

    n = int(rng.integers(1, 4))
    tasks = []
    for i in range(n):
        period = float(rng.integers(2, 13))
        deadline = float(rng.integers(1, int(period) + 1))
        wcet = float(rng.integers(1, max(2, int(deadline) + 1)))
        tasks.append(
            Task(wcet=wcet, period=period, deadline=deadline, name=f"tau{i}")
        )
    taskset = TaskSet(tasks)
    # integer periods <= 12 => hyperperiod <= lcm(2..12) = 27720
    hyper = math.lcm(*(int(t.period) for t in tasks))
    horizon = float(max(hyper, max(int(t.deadline) for t in tasks)))
    crit = max(
        dbf_taskset(tasks, t) / t for t in demand_points(tasks, horizon)
    )
    speed = max(crit, 1e-6) * _nudge(rng)
    return taskset, identical_platform(1, speed=speed)


#: Profile name -> generator.  Order is part of the fuzzer's determinism
#: contract: a trial's profile is chosen by index into this mapping.
PROFILES: dict[str, object] = {
    "uniform": _uniform,
    "tiny": _tiny,
    "boundary-edf": _boundary_edf,
    "boundary-rms-ll": _boundary_rms_ll,
    "boundary-rms-hyperbolic": _boundary_rms_hyperbolic,
    "boundary-capacity": _boundary_capacity,
    "constrained": _constrained,
    "boundary-qpa": _boundary_qpa,
}


def draw_instance(
    rng: np.random.Generator, profile: str
) -> tuple[TaskSet, Platform]:
    """Draw one instance from the named profile."""
    try:
        gen = PROFILES[profile]
    except KeyError:
        raise KeyError(
            f"unknown profile {profile!r}; known: {sorted(PROFILES)}"
        ) from None
    taskset, platform = gen(rng)  # type: ignore[operator]
    if math.fsum(t.utilization for t in taskset) <= 0:  # pragma: no cover
        raise RuntimeError("generated an empty instance")
    return taskset, platform
