"""The oracle invariant lattice: dominance relations between the repo's
independent answers, checked mechanically on concrete instances.

The repo answers every feasibility question at least three ways — the
paper's first-fit testers, the exact/LP adversaries, and the serving
layer.  Each relation below is backed by a theorem, so *any* observed
violation is a bug in one of the implementations (see
``docs/theory.md#9-oracle-invariant-lattice`` for the full table):

* sufficient ⇒ exact (Theorem II.3 / hyperbolic bound soundness),
* Liu–Layland ⇒ hyperbolic (Bini–Buttazzo dominance),
* exact-RMS ⇒ EDF (Theorem II.2: EDF utilization test is exact),
* any partitioned verdict ⇒ LP feasible (the §II LP relaxes every
  schedule, Lemma II.1's setting),
* Theorems I.1–I.4 speedup bounds (accept side) and the Theorem I.1/I.2
  rejection certificates,
* incremental :class:`~repro.core.bounds.MachineState` ≡ one-shot
  ``feasible()`` (the O(nm) argument of §III needs them interchangeable),
* :func:`~repro.core.partition.verify_partition` confirms every success,
* serialization / digest / service round-trips are identity.

Tolerance discipline
--------------------
Implications across *different* tests are checked with a robustness
margin: the hypothesis must hold with ``margin`` less speed (or the
conclusion is granted ``margin`` more).  Every feasibility comparison in
the library is tolerant to :data:`~repro.core.model.EPS` relative noise,
so two mathematically-equivalent verdicts computed through different
arithmetic may legitimately disagree on instances engineered *inside*
the tolerance window — exactly the instances the boundary profiles
generate.  A real bug produces a macroscopic gap and clears the margin
easily.  Same-path comparisons (incremental vs one-shot, partition vs
``verify_partition``) are checked **exactly**: after the compensated-
accumulation fix they run arithmetic that cannot drift a verdict.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

from ..baselines.exact import (
    exact_partitioned_edf_feasible,
    exact_partitioned_rms_feasible,
)
from ..core.bounds import ADMISSION_TESTS, AdmissionTest
from ..core.constants import (
    ALPHA_EDF_LP,
    ALPHA_EDF_PARTITIONED,
    ALPHA_RMS_LP,
    ALPHA_RMS_PARTITIONED,
)
from ..core.feasibility import feasibility_test
from ..core.lp import lp_feasible
from ..core.model import Platform, Task, TaskSet
from ..core.partition import first_fit_partition, verify_partition
from ..io_.serialize import (
    instance_digest,
    platform_from_dict,
    platform_to_dict,
    report_from_dict,
    report_to_dict,
    taskset_from_dict,
    taskset_to_dict,
)

__all__ = [
    "Violation",
    "OracleConfig",
    "CHECKS",
    "PER_TEST_CHECKS",
    "check_backend_equivalence",
    "check_instance",
]


@dataclass(frozen=True)
class Violation:
    """One broken invariant on one instance (picklable, JSON-able)."""

    invariant: str
    detail: str

    def as_dict(self) -> dict[str, str]:
        return {"invariant": self.invariant, "detail": self.detail}


@dataclass(frozen=True)
class OracleConfig:
    """What to audit and how hard.

    ``overrides`` substitutes admission tests by name — the self-test
    injects a deliberately broken Liu–Layland test this way and asserts
    the lattice catches it.
    """

    #: admission tests under audit (names in the registry / overrides)
    tests: tuple[str, ...] = ("edf", "rms-ll", "rms-hyperbolic", "rms-rta")
    #: replacement tests keyed by name (for fault injection)
    overrides: Mapping[str, AdmissionTest] | None = None
    #: invariant names to run (default: all of :data:`CHECKS`)
    checks: tuple[str, ...] = ()
    #: kernel backends the ``backend-equivalence`` invariant audits
    #: (empty: every available non-scalar backend)
    backends: tuple[str, ...] = ()
    #: robustness margin for cross-test implications (see module docs)
    margin: float = 1e-6
    #: node budgets for the exact branch-and-bound adversaries
    edf_node_limit: int = 500_000
    rms_node_limit: int = 50_000

    def test(self, name: str) -> AdmissionTest:
        if self.overrides and name in self.overrides:
            return self.overrides[name]
        return ADMISSION_TESTS[name]

    def active_checks(self) -> tuple[str, ...]:
        return self.checks if self.checks else tuple(CHECKS)


_THEOREM_ALPHAS: dict[str, float] = {
    "edf": ALPHA_EDF_PARTITIONED,
    "rms-ll": ALPHA_RMS_PARTITIONED,
}


def _accepts(
    test: AdmissionTest, taskset: Sequence, speed: float, *, margin: float = 0.0
) -> bool:
    """One-shot acceptance; positive ``margin`` demands it robustly
    (still accepted on a machine ``margin`` slower)."""
    return test.feasible(list(taskset), speed * (1.0 - margin))


# ---------------------------------------------------------------------------
# Invariant checks.  Each: (taskset, platform, config) -> [Violation].
# ---------------------------------------------------------------------------


def check_single_machine_lattice(
    taskset: TaskSet, platform: Platform, config: OracleConfig
) -> list[Violation]:
    """Per-speed dominance chain: LL ⇒ hyperbolic ⇒ exact RTA ⇒ EDF."""
    if not taskset.is_implicit:
        # The utilization-based links are implicit-deadline theorems
        # (hyperbolic ⇒ RTA is false for d < p); the constrained chain
        # lives in check_constrained_lattice.
        return []
    out: list[Violation] = []
    chain = [
        ("rms-ll", "rms-hyperbolic", "Bini–Buttazzo dominance"),
        ("rms-hyperbolic", "rms-rta", "sufficient test vs exact RTA"),
        ("rms-rta", "edf", "RMS-feasible implies EDF-feasible (Thm II.2)"),
    ]
    tasks = list(taskset)
    for speed in sorted(set(platform.speeds)):
        for weaker, stronger, why in chain:
            if weaker not in config.tests or stronger not in config.tests:
                continue
            if _accepts(
                config.test(weaker), tasks, speed, margin=config.margin
            ) and not _accepts(config.test(stronger), tasks, speed):
                out.append(
                    Violation(
                        "single-machine-lattice",
                        f"{weaker} accepts but {stronger} rejects at "
                        f"speed {speed!r} ({why})",
                    )
                )
    return out


def check_incremental_vs_oneshot(
    taskset: TaskSet, platform: Platform, config: OracleConfig
) -> list[Violation]:
    """`MachineState.admits` must equal the one-shot set test, exactly.

    Replays a first-fit-style feed: tasks in utilization-descending order
    against one state per distinct speed; every probe is mirrored by a
    one-shot ``feasible()`` call on the would-be set.
    """
    out: list[Violation] = []
    order = taskset.order_by_utilization()
    for name in config.tests:
        test = config.test(name)
        for speed in sorted(set(platform.speeds)):
            state = test.open(speed)
            accepted: list = []
            for i in order:
                task = taskset[i]
                incremental = state.admits(task)
                oneshot = test.feasible(accepted + [task], speed)
                if incremental != oneshot:
                    out.append(
                        Violation(
                            "incremental-vs-oneshot",
                            f"{name} at speed {speed!r}: admits(task {i}) ="
                            f" {incremental} but one-shot = {oneshot} with "
                            f"{len(accepted)} tasks already placed",
                        )
                    )
                    break
                if incremental:
                    state.add(task)
                    accepted.append(task)
            load = math.fsum(t.utilization for t in accepted)
            if abs(state.load - load) > 1e-9 * max(1.0, load):
                out.append(
                    Violation(
                        "incremental-vs-oneshot",
                        f"{name} at speed {speed!r}: state.load {state.load!r}"
                        f" drifted from fsum {load!r}",
                    )
                )
    return out


def check_verify_partition(
    taskset: TaskSet, platform: Platform, config: OracleConfig
) -> list[Violation]:
    """Every successful first-fit partition re-verifies one-shot, and the
    reported per-machine loads match an independent exact summation."""
    out: list[Violation] = []
    for name in config.tests:
        test = config.test(name)
        alphas = (1.0, _THEOREM_ALPHAS.get(name))
        for alpha in alphas:
            if alpha is None:
                continue
            result = first_fit_partition(taskset, platform, test, alpha=alpha)
            if not result.success:
                continue
            if not verify_partition(result, taskset, platform, test):
                out.append(
                    Violation(
                        "verify-partition",
                        f"first-fit({name}, alpha={alpha!r}) succeeded but "
                        f"verify_partition rejects the assignment",
                    )
                )
            for j, idxs in enumerate(result.machine_tasks):
                expect = math.fsum(taskset[i].utilization for i in idxs)
                if abs(result.loads[j] - expect) > 1e-9 * max(1.0, expect):
                    out.append(
                        Violation(
                            "verify-partition",
                            f"first-fit({name}, alpha={alpha!r}) machine {j} "
                            f"load {result.loads[j]!r} != fsum {expect!r}",
                        )
                    )
    return out


def check_lp_dominance(
    taskset: TaskSet, platform: Platform, config: OracleConfig
) -> list[Violation]:
    """The §II LP relaxes every schedule: any partitioned success at
    speed 1 — first-fit or exact branch-and-bound — implies LP feasible;
    exact-RMS partitioned feasible implies exact-EDF partitioned feasible."""
    out: list[Violation] = []
    lp_ok = lp_feasible(taskset, platform)
    for name in config.tests:
        result = first_fit_partition(
            taskset, platform, config.test(name), alpha=1.0 - config.margin
        )
        if result.success and not lp_ok:
            out.append(
                Violation(
                    "lp-dominance",
                    f"first-fit({name}) partitions at speed 1 but the LP "
                    f"is infeasible",
                )
            )
    exact_edf = exact_partitioned_edf_feasible(
        taskset, platform, node_limit=config.edf_node_limit
    )
    if exact_edf is True and not lp_ok:
        out.append(
            Violation(
                "lp-dominance",
                "exact partitioned-EDF feasible but the LP is infeasible",
            )
        )
    exact_rms = exact_partitioned_rms_feasible(
        taskset, platform, node_limit=config.rms_node_limit
    )
    if exact_rms is True and exact_edf is False:
        out.append(
            Violation(
                "lp-dominance",
                "exact partitioned-RMS feasible but exact partitioned-EDF "
                "infeasible (RMS-feasible sets satisfy EDF capacity)",
            )
        )
    return out


def check_theorem_speedups(
    taskset: TaskSet, platform: Platform, config: OracleConfig
) -> list[Violation]:
    """Theorems I.1–I.4, accept side: an adversary-feasible instance must
    be accepted by first-fit at the theorem's speed augmentation."""
    out: list[Violation] = []
    grant = 1.0 + config.margin

    def ff(name: str, alpha: float) -> bool:
        return first_fit_partition(
            taskset, platform, config.test(name), alpha=alpha
        ).success

    exact_edf = exact_partitioned_edf_feasible(
        taskset, platform, node_limit=config.edf_node_limit
    )
    if "edf" in config.tests and exact_edf is True:
        if not ff("edf", ALPHA_EDF_PARTITIONED * grant):
            out.append(
                Violation(
                    "theorem-speedup",
                    f"Theorem I.1: partitioned-EDF feasible at speed 1 but "
                    f"first-fit EDF rejects at alpha={ALPHA_EDF_PARTITIONED}",
                )
            )
    if "rms-ll" in config.tests:
        exact_rms = exact_partitioned_rms_feasible(
            taskset, platform, node_limit=config.rms_node_limit
        )
        if exact_rms is True and not ff("rms-ll", ALPHA_RMS_PARTITIONED * grant):
            out.append(
                Violation(
                    "theorem-speedup",
                    f"Theorem I.2: partitioned-RMS feasible at speed 1 but "
                    f"first-fit RMS-LL rejects at "
                    f"alpha={ALPHA_RMS_PARTITIONED:.6f}",
                )
            )
    if lp_feasible(taskset, platform):
        if "edf" in config.tests and not ff("edf", ALPHA_EDF_LP * grant):
            out.append(
                Violation(
                    "theorem-speedup",
                    f"Theorem I.3: LP feasible but first-fit EDF rejects at "
                    f"alpha={ALPHA_EDF_LP}",
                )
            )
        if "rms-ll" in config.tests and not ff("rms-ll", ALPHA_RMS_LP * grant):
            out.append(
                Violation(
                    "theorem-speedup",
                    f"Theorem I.4: LP feasible but first-fit RMS-LL rejects "
                    f"at alpha={ALPHA_RMS_LP}",
                )
            )
    return out


def check_certificates(
    taskset: TaskSet, platform: Platform, config: OracleConfig
) -> list[Violation]:
    """Theorem I.1/I.2 rejections must carry a certificate whose
    arithmetic holds up, and must never contradict the exact adversary."""
    if config.overrides:
        # feasibility_test always uses the registry tests; auditing it
        # against injected fakes would report spurious violations.
        return []
    if not taskset.is_implicit:
        # feasibility_test refuses constrained-deadline input by design;
        # the constrained family has no rejection certificates.
        return []
    out: list[Violation] = []
    for scheduler, exact, limit in (
        ("edf", exact_partitioned_edf_feasible, config.edf_node_limit),
        ("rms", exact_partitioned_rms_feasible, config.rms_node_limit),
    ):
        report = feasibility_test(taskset, platform, scheduler, "partitioned")
        if report.accepted:
            continue
        cert = report.certificate
        if cert is None:
            out.append(
                Violation(
                    "certificates",
                    f"{scheduler} rejection at theorem alpha carries no "
                    f"certificate",
                )
            )
            continue
        if cert.prefix_utilization < cert.eligible_capacity * (
            1.0 - config.margin
        ):
            out.append(
                Violation(
                    "certificates",
                    f"{scheduler} rejection certificate does not certify: "
                    f"prefix {cert.prefix_utilization!r} vs eligible "
                    f"capacity {cert.eligible_capacity!r}",
                )
            )
        # Robustly-certifying only: within the tolerance window around
        # prefix == capacity the certificate's strict EPS test and the
        # exact adversary's tolerant admission legitimately overlap.
        robustly_certifies = cert.prefix_utilization > cert.eligible_capacity * (
            1.0 + config.margin
        )
        if robustly_certifies and exact(taskset, platform, node_limit=limit) is True:
            out.append(
                Violation(
                    "certificates",
                    f"{scheduler} certificate claims partitioned "
                    f"infeasibility but the exact adversary found a "
                    f"partition",
                )
            )
    return out


def _report_roundtrip_identity(report) -> bool:
    encoded = report_to_dict(report)
    rewired = json.loads(json.dumps(encoded))
    return report_to_dict(report_from_dict(rewired)) == encoded


def check_roundtrip(
    taskset: TaskSet, platform: Platform, config: OracleConfig
) -> list[Violation]:
    """Serialize/digest identity: dict and JSON round-trips reproduce the
    instance bit-for-bit; the digest is permutation/name-invariant."""
    out: list[Violation] = []
    ts2 = taskset_from_dict(json.loads(json.dumps(taskset_to_dict(taskset))))
    if ts2 != taskset:
        out.append(Violation("roundtrip", "taskset JSON round-trip differs"))
    pf2 = platform_from_dict(json.loads(json.dumps(platform_to_dict(platform))))
    if pf2 != platform:
        out.append(Violation("roundtrip", "platform JSON round-trip differs"))
    digest = instance_digest(taskset, platform)
    if instance_digest(ts2, pf2) != digest:
        out.append(Violation("roundtrip", "digest changed across round-trip"))
    # permutation + renaming invariance, derived deterministically from
    # the instance itself (no RNG needed)
    renamed = TaskSet(
        Task(
            wcet=t.wcet,
            period=t.period,
            name=f"renamed{i}",
            deadline=t.deadline,
        )
        for i, t in enumerate(reversed(taskset.tasks))
    )
    shuffled_pf = Platform(list(platform)[::-1])
    if instance_digest(renamed, shuffled_pf) != digest:
        out.append(
            Violation(
                "roundtrip",
                "digest not invariant under task/machine permutation and "
                "renaming",
            )
        )
    # ... but *not* blind to the deadline axis: nudging one constrained
    # task's deadline (derived deterministically, no RNG) must change it.
    for i, t in enumerate(taskset):
        if t.deadline < t.period:
            bumped = 0.5 * (t.deadline + t.period)
            if bumped != t.deadline and bumped <= t.period:
                tasks = list(taskset.tasks)
                tasks[i] = Task(
                    wcet=t.wcet,
                    period=t.period,
                    deadline=bumped,
                    name=t.name,
                )
                if instance_digest(TaskSet(tasks), platform) == digest:
                    out.append(
                        Violation(
                            "roundtrip",
                            f"digest blind to a deadline-only change on "
                            f"task {i}",
                        )
                    )
            break
    if taskset.is_implicit:
        report = feasibility_test(taskset, platform, "edf", "partitioned")
        if not _report_roundtrip_identity(report):
            out.append(
                Violation("roundtrip", "feasibility report round-trip differs")
            )
    return out


def check_service_roundtrip(
    taskset: TaskSet, platform: Platform, config: OracleConfig
) -> list[Violation]:
    """The serving layer answers exactly like a direct library call.

    Submits the instance (and a task-permuted copy, which shares a cache
    entry) through :class:`repro.service.app.FeasibilityService` and
    compares verdict, alpha, and — on acceptance — that the remapped
    partition verifies against the *submitted* task order.
    """
    from ..core.partition import PartitionResult
    from ..io_.serialize import partition_result_from_dict
    from ..service.app import FeasibilityService
    from ..service.validation import ValidationError

    out: list[Violation] = []
    service = FeasibilityService(jobs=1, cache_size=16)
    if not taskset.is_implicit:
        # The theorem endpoint must refuse constrained deadlines with a
        # *field-level* validation error (never a mid-evaluation crash).
        payload = {
            "taskset": taskset_to_dict(taskset),
            "platform": platform_to_dict(platform),
            "scheduler": "edf",
            "adversary": "partitioned",
        }
        try:
            service.handle_test(payload)
        except ValidationError as exc:
            if not any("deadline" in e.field for e in exc.errors):
                out.append(
                    Violation(
                        "service-roundtrip",
                        "constrained submission rejected without a "
                        "deadline field error",
                    )
                )
        else:
            out.append(
                Violation(
                    "service-roundtrip",
                    "service accepted a constrained-deadline /v1/test "
                    "submission",
                )
            )
        return out
    for scheduler in ("edf", "rms"):
        direct = feasibility_test(taskset, platform, scheduler, "partitioned")
        for submitted in (taskset, taskset.subset(range(len(taskset) - 1, -1, -1))):
            payload = {
                "taskset": taskset_to_dict(submitted),
                "platform": platform_to_dict(platform),
                "scheduler": scheduler,
                "adversary": "partitioned",
            }
            response = service.handle_test(payload)
            report = response["report"]
            if report["accepted"] != direct.accepted:
                out.append(
                    Violation(
                        "service-roundtrip",
                        f"service {scheduler} verdict {report['accepted']} "
                        f"!= direct {direct.accepted}",
                    )
                )
                continue
            if report["alpha"] != direct.alpha:
                out.append(
                    Violation(
                        "service-roundtrip",
                        f"service {scheduler} alpha {report['alpha']!r} != "
                        f"direct {direct.alpha!r}",
                    )
                )
            if report["accepted"]:
                result: PartitionResult = partition_result_from_dict(
                    report["partition"]
                )
                if not verify_partition(result, submitted, platform):
                    out.append(
                        Violation(
                            "service-roundtrip",
                            f"service {scheduler} remapped partition does "
                            f"not verify against the submitted order",
                        )
                    )
    return out


def check_backend_equivalence(
    taskset: TaskSet, platform: Platform, config: OracleConfig
) -> list[Violation]:
    """Every :mod:`repro.kernels` backend reproduces the scalar path
    **bit-for-bit** — same verdict, same partition (assignment, loads,
    order), same certificate — with no tolerance margin.

    This is a same-path comparison in the module-docstring sense: the
    kernels are required to replay the scalar float operations exactly
    (compensated accumulation, crossover-threshold admission), so any
    difference, however small, is a bug.  Each instance is checked as a
    singleton batch *and* inside a two-element shard (with its reversed
    permutation, which shares the shard shape), across both theorem
    schedulers and an explicit non-default alpha, plus the batched
    primitives.
    """
    from ..core.bounds import liu_layland_bound
    from ..core.dbf import dbf_taskset
    from ..kernels import (
        available_kernel_backends,
        dbf_demand_batch,
        first_fit_batch,
        test_feasibility_batch,
        utilization_bounds_batch,
    )

    audited = tuple(
        b for b in (config.backends or available_kernel_backends())
        if b != "scalar"
    )
    out: list[Violation] = []
    reversed_ts = taskset.subset(range(len(taskset) - 1, -1, -1))
    if taskset.is_implicit:
        for scheduler in ("edf", "rms"):
            for alpha in (None, 1.0):
                direct = [
                    report_to_dict(
                        feasibility_test(
                            ts, platform, scheduler, "partitioned", alpha=alpha
                        )
                    )
                    for ts in (taskset, reversed_ts)
                ]
                for backend in audited:
                    got = [
                        report_to_dict(r)
                        for r in test_feasibility_batch(
                            [(taskset, platform), (reversed_ts, platform)],
                            scheduler,
                            "partitioned",
                            alpha=alpha,
                            backend=backend,
                        )
                    ]
                    single = report_to_dict(
                        test_feasibility_batch(
                            [(taskset, platform)],
                            scheduler,
                            "partitioned",
                            alpha=alpha,
                            backend=backend,
                        )[0]
                    )
                    for label, scalar_d, batch_d in (
                        ("batch[0]", direct[0], got[0]),
                        ("batch[1]", direct[1], got[1]),
                        ("singleton", direct[0], single),
                    ):
                        if batch_d != scalar_d:
                            keys = sorted(
                                k
                                for k in set(scalar_d) | set(batch_d)
                                if scalar_d.get(k) != batch_d.get(k)
                            )
                            out.append(
                                Violation(
                                    "backend-equivalence",
                                    f"{backend} {label} report != scalar for "
                                    f"{scheduler}/partitioned alpha={alpha!r};"
                                    f" differing keys: {keys}",
                                )
                            )
    else:
        # The theorem batch path refuses constrained input up front with
        # the scalar path's exact error text — on every backend, never a
        # mid-evaluation crash from inside a shard.
        try:
            feasibility_test(taskset, platform, "edf", "partitioned")
            want: str | None = None
        except ValueError as exc:
            want = str(exc)
        for backend in audited:
            try:
                test_feasibility_batch(
                    [(taskset, platform), (reversed_ts, platform)],
                    "edf",
                    "partitioned",
                    backend=backend,
                )
            except ValueError as exc:
                if want is None or str(exc) != want:
                    out.append(
                        Violation(
                            "backend-equivalence",
                            f"{backend} constrained rejection error differs "
                            f"from the scalar path",
                        )
                    )
            else:
                out.append(
                    Violation(
                        "backend-equivalence",
                        f"{backend} evaluated a constrained batch the "
                        f"scalar path refuses",
                    )
                )
    # Batched primitives: exact equality against their scalar definitions.
    times = sorted({t.deadline for t in taskset} | {t.period for t in taskset})
    scalar_bounds = [
        (ts.total_utilization, liu_layland_bound(len(ts)))
        for ts in (taskset, reversed_ts)
    ]
    scalar_dbf = [
        [dbf_taskset(ts.tasks, t) for t in times]
        for ts in (taskset, reversed_ts)
    ]
    for backend in audited:
        if (
            utilization_bounds_batch(
                [taskset, reversed_ts], backend=backend
            )
            != scalar_bounds
        ):
            out.append(
                Violation(
                    "backend-equivalence",
                    f"{backend} utilization_bounds_batch != scalar",
                )
            )
        if (
            dbf_demand_batch([taskset, reversed_ts], times, backend=backend)
            != scalar_dbf
        ):
            out.append(
                Violation(
                    "backend-equivalence",
                    f"{backend} dbf_demand_batch != scalar",
                )
            )
    # First-fit with the exact QPA admission runs on *every* deadline
    # model; the dbfloop kernel must reproduce the scalar partitioner
    # bit-for-bit (assignment, failed index, compensated loads).
    qpa_test = ADMISSION_TESTS["edf-dbf"]
    scalar_ff = [
        first_fit_partition(ts, platform, qpa_test, alpha=1.0)
        for ts in (taskset, reversed_ts)
    ]
    for backend in audited:
        got_ff = first_fit_batch(
            [(taskset, platform), (reversed_ts, platform)],
            "edf-dbf",
            backend=backend,
        )
        single_ff = first_fit_batch(
            [(taskset, platform)], "edf-dbf", backend=backend
        )[0]
        for label, want_r, have_r in (
            ("batch[0]", scalar_ff[0], got_ff[0]),
            ("batch[1]", scalar_ff[1], got_ff[1]),
            ("singleton", scalar_ff[0], single_ff),
        ):
            if have_r != want_r:
                out.append(
                    Violation(
                        "backend-equivalence",
                        f"{backend} first_fit_batch('edf-dbf') {label} != "
                        f"scalar first-fit partition",
                    )
                )
    return out


def check_constrained_lattice(
    taskset: TaskSet, platform: Platform, config: OracleConfig
) -> list[Violation]:
    """Per-speed dominance chain on the constrained-deadline family.

    Two sufficiency chains end in the exact processor-demand test —
    Han–Zhao's linearized dbf (k=1) ⇒ approximate dbf (k=4) ⇒ QPA, and
    Chen's FBB linear bound ⇒ DM response-time analysis ⇒ QPA (EDF
    optimality) — bracketed by the density sufficient condition below
    and the utilization necessary condition above.  Holds for any
    ``d <= p`` set, implicit ones included; arbitrary deadlines
    (``d > p``) are outside the lattice and skipped.
    """
    from ..baselines.chen_fp_dbf import chen_fp_feasible
    from ..baselines.han_zhao import han_zhao_feasible
    from ..core.dbf import qpa_edf_feasible
    from ..core.dbf_approx import edf_approx_demand_feasible
    from ..core.rta import dm_rta_schedulable

    if any(t.deadline > t.period for t in taskset):
        return []
    out: list[Violation] = []
    tasks = list(taskset)
    m = config.margin
    for speed in sorted(set(platform.speeds)):
        qpa = qpa_edf_feasible(tasks, speed)
        links = (
            (
                "han-zhao(k=1)",
                han_zhao_feasible(tasks, speed * (1.0 - m)),
                "edf-dbf-approx(k=4)",
                edf_approx_demand_feasible(tasks, speed, k=4),
                "coarser approximate dbf dominates finer",
            ),
            (
                "edf-dbf-approx(k=4)",
                edf_approx_demand_feasible(tasks, speed * (1.0 - m), k=4),
                "edf-dbf",
                qpa,
                "approximate dbf upper-bounds the exact dbf",
            ),
            (
                "chen-dm",
                chen_fp_feasible(tasks, speed * (1.0 - m)),
                "dm-rta",
                dm_rta_schedulable(tasks, speed),
                "FBB linear bound upper-bounds the DM request bound",
            ),
            (
                "dm-rta",
                dm_rta_schedulable(tasks, speed * (1.0 - m)),
                "edf-dbf",
                qpa,
                "EDF optimality on one machine",
            ),
        )
        for weaker, w_ok, stronger, s_ok, why in links:
            if w_ok and not s_ok:
                out.append(
                    Violation(
                        "constrained-lattice",
                        f"{weaker} accepts but {stronger} rejects at "
                        f"speed {speed!r} ({why})",
                    )
                )
        density = taskset.total_density
        if density <= speed * (1.0 - m) and not qpa:
            out.append(
                Violation(
                    "constrained-lattice",
                    f"total density {density!r} fits speed {speed!r} but "
                    f"QPA rejects (density sufficiency)",
                )
            )
        total_u = taskset.total_utilization
        if (
            qpa_edf_feasible(tasks, speed * (1.0 - m))
            and total_u > speed * (1.0 + m)
        ):
            out.append(
                Violation(
                    "constrained-lattice",
                    f"QPA accepts at speed {speed!r} but utilization "
                    f"{total_u!r} exceeds it (necessary condition)",
                )
            )
    return out


def check_constrained_partition(
    taskset: TaskSet, platform: Platform, config: OracleConfig
) -> list[Violation]:
    """First-fit with the constrained-deadline admissions is sound.

    Every successful partition re-verifies one-shot, and — because the
    QPA walk is exact and the Han–Zhao/Chen admissions are sufficient —
    every machine the partitioner builds must pass the exact
    processor-demand test at its own (margin-granted) speed.
    """
    from ..baselines.chen_fp_dbf import ChenFPAdmissionTest
    from ..baselines.han_zhao import HanZhaoAdmissionTest
    from ..core.dbf import qpa_edf_feasible

    if any(t.deadline > t.period for t in taskset):
        return []
    out: list[Violation] = []
    tests: tuple[AdmissionTest, ...] = (
        ADMISSION_TESTS["edf-dbf"],
        HanZhaoAdmissionTest(),
        ChenFPAdmissionTest(),
    )
    for test in tests:
        result = first_fit_partition(taskset, platform, test, alpha=1.0)
        if not result.success:
            continue
        if not verify_partition(result, taskset, platform, test):
            out.append(
                Violation(
                    "constrained-partition",
                    f"first-fit({test.name}) succeeded but "
                    f"verify_partition rejects the assignment",
                )
            )
        for j, idxs in enumerate(result.machine_tasks):
            if not idxs:
                continue
            machine = [taskset[i] for i in idxs]
            speed = platform[j].speed * (1.0 + config.margin)
            if not qpa_edf_feasible(machine, speed):
                out.append(
                    Violation(
                        "constrained-partition",
                        f"first-fit({test.name}) machine {j} fails the "
                        f"exact processor-demand test at its speed",
                    )
                )
    return out


#: All invariant checks by name, in deterministic execution order.
CHECKS: dict[str, Callable[[TaskSet, Platform, OracleConfig], list[Violation]]] = {
    "single-machine-lattice": check_single_machine_lattice,
    "incremental-vs-oneshot": check_incremental_vs_oneshot,
    "verify-partition": check_verify_partition,
    "lp-dominance": check_lp_dominance,
    "theorem-speedup": check_theorem_speedups,
    "certificates": check_certificates,
    "roundtrip": check_roundtrip,
    "service-roundtrip": check_service_roundtrip,
    "backend-equivalence": check_backend_equivalence,
    "constrained-lattice": check_constrained_lattice,
    "constrained-partition": check_constrained_partition,
}

#: The sub-lattice that exercises one admission test in isolation —
#: what the per-test property suites sweep with a large budget.
PER_TEST_CHECKS: tuple[str, ...] = (
    "single-machine-lattice",
    "incremental-vs-oneshot",
    "verify-partition",
    "theorem-speedup",
)


def check_instance(
    taskset: TaskSet, platform: Platform, config: OracleConfig | None = None
) -> list[Violation]:
    """Run the configured invariant checks; return every violation."""
    config = config or OracleConfig()
    out: list[Violation] = []
    for name in config.active_checks():
        try:
            check = CHECKS[name]
        except KeyError:
            raise KeyError(
                f"unknown invariant {name!r}; known: {sorted(CHECKS)}"
            ) from None
        out.extend(check(taskset, platform, config))
    return out
