"""ASCII Gantt rendering of execution traces.

Turns a :class:`~repro.sim.trace.Trace` into a per-task timeline — the
quickest way to eyeball a schedule, show preemptions, and spot deadline
misses in examples and bug reports::

    t0 |####....####....####....| 3 jobs, 0 miss
    t1 |....##......##......##..| 3 jobs, 0 miss
        0                      24

Each column is one time bucket; a task's row shows ``#`` where it ran
for the majority of the bucket, ``.`` where it did not, and ``!`` at
buckets containing one of its deadline misses.
"""

from __future__ import annotations

from typing import Sequence

from ..core.model import Task
from .trace import Trace

__all__ = ["render_gantt"]


def render_gantt(
    trace: Trace,
    tasks: Sequence[Task],
    *,
    width: int = 72,
    run_char: str = "#",
    idle_char: str = ".",
    miss_char: str = "!",
) -> str:
    """Render the trace as an ASCII Gantt chart, one row per task."""
    if width < 8:
        raise ValueError("width must be at least 8")
    horizon = trace.horizon
    if horizon <= 0:
        return "(empty trace)"
    bucket = horizon / width
    task_ids = sorted({seg.task_index for seg in trace.segments} | {
        rec.task_index for rec in trace.jobs
    })

    # per task: fraction of each bucket spent running
    fill: dict[int, list[float]] = {i: [0.0] * width for i in task_ids}
    for seg in trace.segments:
        first = int(seg.start / bucket)
        last = min(int(seg.end / bucket), width - 1)
        for b in range(first, last + 1):
            lo = max(seg.start, b * bucket)
            hi = min(seg.end, (b + 1) * bucket)
            if hi > lo:
                fill[seg.task_index][b] += (hi - lo) / bucket

    misses: dict[int, list[int]] = {i: [] for i in task_ids}
    for rec in trace.jobs:
        if rec.missed and rec.task_index in misses:
            b = min(int(rec.deadline / bucket), width - 1)
            misses[rec.task_index].append(b)

    lines = []
    name_width = max(
        (len(tasks[i].name) if i < len(tasks) and tasks[i].name else len(f"t{i}"))
        for i in task_ids
    ) if task_ids else 2
    for i in task_ids:
        label = (
            tasks[i].name if i < len(tasks) and tasks[i].name else f"t{i}"
        ).rjust(name_width)
        row = [
            run_char if fill[i][b] >= 0.5 else idle_char for b in range(width)
        ]
        for b in misses[i]:
            row[b] = miss_char
        n_jobs = sum(1 for r in trace.jobs if r.task_index == i)
        n_miss = sum(1 for r in trace.jobs if r.task_index == i and r.missed)
        lines.append(
            f"{label} |{''.join(row)}| {n_jobs} jobs, {n_miss} miss"
        )
    axis = f"{' ' * name_width}  0{' ' * (width - len(f'{horizon:g}') - 1)}{horizon:g}"
    lines.append(axis)
    return "\n".join(lines)
