"""Execution traces: what actually ran, when, on which machine.

Traces are the simulator's auditable output — every claim the library
makes about schedulability can be checked against them by the validators
(:mod:`repro.sim.validators`) without trusting the simulator's internals.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Segment", "JobRecord", "Trace"]


@dataclass(frozen=True)
class Segment:
    """A maximal interval during which one job ran uninterrupted."""

    start: float
    end: float
    task_index: int
    job_id: int

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass(frozen=True)
class JobRecord:
    """Lifecycle summary of one job."""

    task_index: int
    job_id: int
    release: float
    deadline: float  # absolute
    work: float
    #: completion time, or None if still unfinished at the horizon
    completion: float | None
    #: True iff the deadline was missed (late completion, or unfinished
    #: with the deadline inside the horizon)
    missed: bool

    @property
    def response_time(self) -> float | None:
        if self.completion is None:
            return None
        return self.completion - self.release


@dataclass(frozen=True)
class Trace:
    """Complete execution record of one machine over ``[0, horizon]``."""

    machine_speed: float
    horizon: float
    policy_name: str
    segments: tuple[Segment, ...]
    jobs: tuple[JobRecord, ...]

    @property
    def any_miss(self) -> bool:
        return any(j.missed for j in self.jobs)

    @property
    def misses(self) -> tuple[JobRecord, ...]:
        return tuple(j for j in self.jobs if j.missed)

    @property
    def busy_time(self) -> float:
        return sum(s.duration for s in self.segments)

    @property
    def utilization_observed(self) -> float:
        """Fraction of the horizon the machine was busy."""
        if self.horizon <= 0:
            return 0.0
        return self.busy_time / self.horizon

    def max_response_time(self, task_index: int) -> float | None:
        """Largest observed response time of a task's completed jobs."""
        times = [
            j.response_time
            for j in self.jobs
            if j.task_index == task_index and j.response_time is not None
        ]
        return max(times) if times else None
