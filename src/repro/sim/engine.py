"""Deterministic discrete-event primitives shared by the simulators."""

from __future__ import annotations

import heapq
from typing import Generic, TypeVar

__all__ = ["TIME_EPS", "EventQueue"]

#: Absolute tolerance for comparing simulation times.  All simulation
#: quantities are O(periods), so an absolute epsilon is appropriate.
TIME_EPS: float = 1e-9

T = TypeVar("T")


class EventQueue(Generic[T]):
    """A time-ordered queue with deterministic FIFO tie-breaking.

    Events pushed at equal times pop in push order (a monotone sequence
    number breaks ties), which keeps simulations replayable.
    """

    __slots__ = ("_heap", "_seq")

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, T]] = []
        self._seq = 0

    def push(self, time: float, payload: T) -> None:
        heapq.heappush(self._heap, (time, self._seq, payload))
        self._seq += 1

    def pop(self) -> tuple[float, T]:
        time, _, payload = heapq.heappop(self._heap)
        return time, payload

    def peek_time(self) -> float:
        """Time of the earliest event; +inf when empty."""
        if not self._heap:
            return float("inf")
        return self._heap[0][0]

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)
