"""Hyperperiod computation and simulation horizons.

For synchronous periodic releases of implicit-deadline tasks, a schedule
that meets all deadlines over one hyperperiod (the lcm of the periods)
repeats forever, so the hyperperiod is the exact certification horizon.
Hyperperiods only exist (usefully) for integer-valued periods and can
explode combinatorially, hence the cap and the fallback horizon.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

from ..core.model import Task

__all__ = ["hyperperiod", "default_horizon"]


def hyperperiod(
    periods: Iterable[float], *, cap: float = 1e9
) -> float | None:
    """lcm of integer-valued periods, or None.

    Returns None when any period is not (within 1e-9) an integer, or when
    the lcm exceeds ``cap`` (simulating that long is pointless).
    """
    ints: list[int] = []
    for p in periods:
        r = round(p)
        if r <= 0 or abs(p - r) > 1e-9 * max(1.0, p):
            return None
        ints.append(int(r))
    if not ints:
        return None
    acc = 1
    for v in ints:
        acc = math.lcm(acc, v)
        if acc > cap:
            return None
    return float(acc)


def default_horizon(
    tasks: Sequence[Task], *, factor: float = 10.0, cap: float = 1e6
) -> float:
    """Simulation horizon: the hyperperiod when it exists and is small,
    else ``factor`` times the largest period.

    The fallback is a *heuristic* horizon (fine for experiments that
    count misses; certification experiments should use integer periods so
    the true hyperperiod applies).
    """
    if not tasks:
        return 0.0
    hp = hyperperiod((t.period for t in tasks), cap=cap)
    if hp is not None:
        return hp
    return factor * max(t.period for t in tasks)
