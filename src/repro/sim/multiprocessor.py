"""Partitioned multiprocessor simulation.

Under partitioned scheduling each machine runs its assigned tasks in
isolation (no migration — the defining property, §I), so a platform
simulation is ``m`` independent uniprocessor simulations sharing the task
set's indexing.  This is what lets the library cross-validate the
feasibility tests end-to-end: a partition accepted at speed augmentation
``alpha`` must produce zero deadline misses when simulated on the
``alpha``-augmented platform (experiment E13).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal, Sequence

import numpy as np

from ..core.model import Platform, TaskSet
from ..core.partition import PartitionResult
from .hyperperiod import default_horizon
from .jobs import JobSource, PeriodicSource, SporadicSource
from .trace import Trace
from .uniprocessor import simulate_uniprocessor

__all__ = ["PartitionedSimulation", "simulate_partitioned"]


@dataclass(frozen=True)
class PartitionedSimulation:
    """Traces of every machine plus aggregate verdicts."""

    traces: tuple[Trace, ...]
    #: per original task index: machine it ran on
    assignment: tuple[int, ...]
    alpha: float

    @property
    def any_miss(self) -> bool:
        return any(tr.any_miss for tr in self.traces)

    @property
    def total_misses(self) -> int:
        return sum(len(tr.misses) for tr in self.traces)

    @property
    def total_jobs(self) -> int:
        return sum(len(tr.jobs) for tr in self.traces)


def simulate_partitioned(
    taskset: TaskSet,
    platform: Platform,
    assignment: PartitionResult | Sequence[int],
    policy: Literal["edf", "rms"] = "edf",
    *,
    alpha: float = 1.0,
    horizon: float | None = None,
    release: Literal["periodic", "sporadic"] = "periodic",
    rng: np.random.Generator | None = None,
    jitter: float = 0.2,
    stop_on_first_miss: bool = False,
    preemption_overhead: float = 0.0,
) -> PartitionedSimulation:
    """Simulate a partitioned schedule on the (optionally augmented) platform.

    Parameters
    ----------
    assignment:
        A successful :class:`~repro.core.partition.PartitionResult` or an
        explicit per-task machine-index sequence.
    alpha:
        Speed augmentation: machine ``j`` runs at ``alpha * s_j`` (§II) —
        pass the feasibility test's alpha to check its acceptance
        guarantee in execution.
    horizon:
        Simulation span (defaults to each machine's local hyperperiod /
        fallback horizon over its own tasks).

    Raises
    ------
    ValueError
        for failed partitions or malformed assignments.
    """
    if isinstance(assignment, PartitionResult):
        if not assignment.success:
            raise ValueError("cannot simulate a failed partition")
        mapping = [a for a in assignment.assignment]
        if any(a is None for a in mapping):
            raise ValueError("partition result leaves tasks unassigned")
        mapping = [int(a) for a in mapping]  # type: ignore[arg-type]
    else:
        mapping = [int(a) for a in assignment]
    if len(mapping) != len(taskset):
        raise ValueError(
            f"assignment covers {len(mapping)} tasks, task set has {len(taskset)}"
        )
    m = len(platform)
    if any(not 0 <= a < m for a in mapping):
        raise ValueError("assignment refers to a machine outside the platform")
    if alpha <= 0:
        raise ValueError("alpha must be positive")
    if release == "sporadic" and rng is None:
        raise ValueError("sporadic release requires an rng")

    per_machine: list[list[int]] = [[] for _ in range(m)]
    for i, a in enumerate(mapping):
        per_machine[a].append(i)

    traces: list[Trace] = []
    for j in range(m):
        local = [taskset[i] for i in per_machine[j]]
        if not local:
            traces.append(
                Trace(
                    machine_speed=platform[j].speed * alpha,
                    horizon=0.0,
                    policy_name=policy,
                    segments=(),
                    jobs=(),
                )
            )
            continue
        local_horizon = horizon if horizon is not None else default_horizon(local)
        if release == "periodic":
            sources: list[JobSource] = [
                PeriodicSource(task, idx)
                for task, idx in zip(local, per_machine[j])
            ]
        else:
            sources = [
                SporadicSource(task, idx, rng, jitter=jitter)  # type: ignore[arg-type]
                for task, idx in zip(local, per_machine[j])
            ]
        traces.append(
            simulate_uniprocessor(
                taskset.tasks,
                platform[j].speed * alpha,
                policy,
                sources,
                local_horizon,
                stop_on_first_miss=stop_on_first_miss,
                preemption_overhead=preemption_overhead,
            )
        )
    return PartitionedSimulation(
        traces=tuple(traces), assignment=tuple(mapping), alpha=alpha
    )
