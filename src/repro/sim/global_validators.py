"""Independent validators for global (migratory) schedule traces.

Global schedules have two invariants partitioned ones don't:

* a job must never execute on two machines at the same instant
  (constraint (2) of the paper's LP is the fluid version of this);
* per-job work accounting must weight each interval by the speed of the
  machine it ran on (speeds differ across a job's lifetime).
"""

from __future__ import annotations

from typing import Sequence

from ..core.model import Task
from .engine import TIME_EPS
from .global_sched import GlobalTrace

__all__ = ["validate_global_trace"]

_WORK_EPS = 1e-6


def validate_global_trace(trace: GlobalTrace, tasks: Sequence[Task]) -> list[str]:
    """Structural invariants of a global schedule; [] when clean."""
    errors: list[str] = []
    records = {(r.task_index, r.job_id): r for r in trace.jobs}

    # per-machine non-overlap
    for machine in range(len(trace.speeds)):
        prev_end = 0.0
        for seg in sorted(
            (s for s in trace.segments if s.machine == machine),
            key=lambda s: s.start,
        ):
            if seg.end <= seg.start:
                errors.append(f"machine {machine}: empty segment {seg}")
            if seg.start < prev_end - TIME_EPS:
                errors.append(
                    f"machine {machine}: overlapping segments at {seg.start}"
                )
            prev_end = max(prev_end, seg.end)

    # per-job: no parallel self-execution, release respected, work adds up
    by_job: dict[tuple[int, int], list] = {}
    for seg in trace.segments:
        by_job.setdefault((seg.task_index, seg.job_id), []).append(seg)
    for key, segs in by_job.items():
        rec = records.get(key)
        if rec is None:
            errors.append(f"job {key}: segments without a record")
            continue
        segs.sort(key=lambda s: s.start)
        prev_end = -1.0
        executed = 0.0
        for seg in segs:
            if seg.start < rec.release - TIME_EPS:
                errors.append(f"job {key}: ran before release at {seg.start}")
            if seg.start < prev_end - TIME_EPS:
                errors.append(
                    f"job {key}: executes on two machines around {seg.start}"
                )
            prev_end = max(prev_end, seg.end)
            executed += seg.duration * trace.speeds[seg.machine]
        if rec.completion is not None:
            if abs(executed - rec.work) > _WORK_EPS * max(1.0, rec.work):
                errors.append(
                    f"job {key}: executed {executed} but work is {rec.work}"
                )
        elif executed > rec.work * (1 + _WORK_EPS):
            errors.append(f"job {key}: over-executed while incomplete")

    for key, rec in records.items():
        if rec.completion is not None:
            expect = rec.completion > rec.deadline + TIME_EPS
            if rec.missed != expect:
                errors.append(f"job {key}: inconsistent miss flag")
    return errors
