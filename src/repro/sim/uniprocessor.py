"""Event-driven preemptive uniprocessor simulator.

Simulates a single speed-``s`` machine executing jobs from a set of
release sources under a priority policy (EDF or RMS), fully preemptively:
at every release or completion the highest-priority ready job runs.  A
machine of speed ``s`` retires ``s`` units of work per unit time, so a
job with ``remaining`` work finishes after ``remaining / s``.

The simulator advances from event to event (releases, completions, the
horizon) — between events the running job is fixed, so execution is exact
up to floating-point addition; no time quantum is involved.
"""

from __future__ import annotations

import math
from typing import Literal, Sequence

import numpy as np

from ..core.model import Task, TaskSet
from .engine import TIME_EPS, EventQueue
from .hyperperiod import default_horizon
from .jobs import Job, JobSource, PeriodicSource, SporadicSource
from .policies import SchedulingPolicy, policy_by_name
from .trace import JobRecord, Segment, Trace

__all__ = ["simulate_uniprocessor", "simulate_taskset_on_machine"]


def _merge_segments(raw: list[Segment]) -> tuple[Segment, ...]:
    """Merge back-to-back segments of the same job."""
    merged: list[Segment] = []
    for seg in raw:
        if (
            merged
            and merged[-1].task_index == seg.task_index
            and merged[-1].job_id == seg.job_id
            and abs(merged[-1].end - seg.start) <= TIME_EPS
        ):
            merged[-1] = Segment(
                start=merged[-1].start,
                end=seg.end,
                task_index=seg.task_index,
                job_id=seg.job_id,
            )
        else:
            merged.append(seg)
    return tuple(merged)


def simulate_uniprocessor(
    tasks: Sequence[Task],
    speed: float,
    policy: SchedulingPolicy | str,
    sources: Sequence[JobSource],
    horizon: float,
    *,
    stop_on_first_miss: bool = False,
    preemption_overhead: float = 0.0,
    on_miss: Literal["continue", "abort"] = "continue",
) -> Trace:
    """Simulate one machine over ``[0, horizon]``.

    Jobs that miss their deadline keep executing (misses are recorded,
    not fatal) unless ``stop_on_first_miss`` cuts the run short — useful
    when only the boolean outcome matters.

    ``on_miss='abort'`` models firm deadlines: a job is discarded the
    moment its deadline passes with work left (recorded as missed and
    incomplete), freeing the machine for still-viable jobs.  The default
    ``'continue'`` (hard-deadline accounting, late completion recorded)
    matches the analytical model.

    ``preemption_overhead`` charges that much extra *work* to a job each
    time it resumes after being preempted (a CRPD-style cache/pipeline
    penalty).  The charge is folded into the job's recorded work, so the
    trace validators' accounting stays exact; the analytical tests ignore
    overheads (they assume it is already inside the WCETs), which is what
    lets experiments quantify how much overhead an accepted partition can
    absorb.

    Returns a :class:`~repro.sim.trace.Trace`; validate it with
    :mod:`repro.sim.validators` for independent assurance.
    """
    if speed <= 0:
        raise ValueError("speed must be positive")
    if horizon < 0:
        raise ValueError("horizon must be non-negative")
    if preemption_overhead < 0:
        raise ValueError("preemption_overhead must be non-negative")
    if isinstance(policy, str):
        policy = policy_by_name(policy)

    releases: EventQueue[int] = EventQueue()
    for si, src in enumerate(sources):
        if src.peek() < horizon - TIME_EPS:
            releases.push(src.peek(), si)

    t = 0.0
    ready: list[Job] = []
    all_jobs: list[Job] = []
    completions: dict[tuple[int, int], float] = {}
    raw_segments: list[Segment] = []
    miss_detected = False

    def admit_releases(now: float) -> None:
        while releases and releases.peek_time() <= now + TIME_EPS:
            _, si = releases.pop()
            src = sources[si]
            job = src.pop()
            ready.append(job)
            all_jobs.append(job)
            if src.peek() < horizon - TIME_EPS:
                releases.push(src.peek(), si)

    admit_releases(t)
    last_running: tuple[int, int] | None = None
    while True:
        if on_miss == "abort":
            # firm deadlines: drop expired jobs before dispatching
            expired = [
                j for j in ready if j.deadline <= t + TIME_EPS and j.remaining > 0
            ]
            for j in expired:
                ready.remove(j)
                if stop_on_first_miss:
                    miss_detected = True
            if miss_detected and stop_on_first_miss:
                break

        if not ready:
            nxt = releases.peek_time()
            if math.isinf(nxt) or nxt >= horizon - TIME_EPS:
                break
            t = nxt
            admit_releases(t)
            continue

        job = min(ready, key=lambda j: policy.key(j, tasks))
        key = (job.task_index, job.job_id)
        if (
            preemption_overhead > 0.0
            and key != last_running
            and job.remaining < job.work - TIME_EPS
        ):
            # resumption after preemption: charge the overhead as extra work
            job.remaining += preemption_overhead
            job.work += preemption_overhead
        last_running = key
        finish = t + job.remaining / speed
        next_release = releases.peek_time()
        event = min(finish, next_release, horizon)
        if on_miss == "abort" and job.deadline < event - TIME_EPS:
            # cut execution at the deadline; the expiry sweep drops it next
            event = max(t, job.deadline)

        if event > t + TIME_EPS:
            raw_segments.append(
                Segment(start=t, end=event, task_index=job.task_index, job_id=job.job_id)
            )
            job.remaining -= (event - t) * speed
        t = event

        if abs(t - finish) <= TIME_EPS or job.remaining <= TIME_EPS * job.work:
            job.remaining = 0.0
            completions[(job.task_index, job.job_id)] = t
            ready.remove(job)
            if stop_on_first_miss and t > job.deadline + TIME_EPS:
                miss_detected = True
                break

        if stop_on_first_miss and any(
            j.deadline < t - TIME_EPS for j in ready
        ):
            miss_detected = True
            break

        if t >= horizon - TIME_EPS:
            break
        admit_releases(t)

    end_time = t if (stop_on_first_miss and miss_detected) else horizon
    records = []
    for job in all_jobs:
        comp = completions.get((job.task_index, job.job_id))
        if comp is not None:
            missed = comp > job.deadline + TIME_EPS
        else:
            # unfinished: a miss iff its deadline fell within the simulated span
            missed = job.deadline <= end_time + TIME_EPS
        records.append(
            JobRecord(
                task_index=job.task_index,
                job_id=job.job_id,
                release=job.release,
                deadline=job.deadline,
                work=job.work,
                completion=comp,
                missed=missed,
            )
        )

    return Trace(
        machine_speed=speed,
        horizon=end_time,
        policy_name=policy.name,
        segments=_merge_segments(raw_segments),
        jobs=tuple(records),
    )


def simulate_taskset_on_machine(
    tasks: TaskSet | Sequence[Task],
    speed: float,
    policy: SchedulingPolicy | str = "edf",
    *,
    horizon: float | None = None,
    release: Literal["periodic", "sporadic"] = "periodic",
    rng: np.random.Generator | None = None,
    jitter: float = 0.2,
    stop_on_first_miss: bool = False,
    preemption_overhead: float = 0.0,
    on_miss: Literal["continue", "abort"] = "continue",
) -> Trace:
    """Convenience wrapper: build sources and pick a horizon.

    ``release='periodic'`` uses synchronous periodic releases (the worst
    case); ``'sporadic'`` adds random inter-release gaps and requires
    ``rng``.  The default horizon is the hyperperiod when available, else
    ten times the longest period.
    """
    task_list = list(tasks)
    if horizon is None:
        horizon = default_horizon(task_list)
    if release == "periodic":
        sources: list[JobSource] = [
            PeriodicSource(task, i) for i, task in enumerate(task_list)
        ]
    elif release == "sporadic":
        if rng is None:
            raise ValueError("sporadic release requires an rng")
        sources = [
            SporadicSource(task, i, rng, jitter=jitter)
            for i, task in enumerate(task_list)
        ]
    else:
        raise ValueError(f"unknown release pattern {release!r}")
    return simulate_uniprocessor(
        task_list,
        speed,
        policy,
        sources,
        horizon,
        stop_on_first_miss=stop_on_first_miss,
        preemption_overhead=preemption_overhead,
        on_miss=on_miss,
    )
