"""Global (migratory) scheduling on related machines.

The paper's "any adversary" may migrate jobs freely; this simulator makes
that concrete: a single ready queue, and at every event the ``m``
highest-priority ready jobs run, highest priority on the fastest machine
(the standard discipline for global scheduling on uniform machines).
Fully preemptive and migratory; a job never runs on two machines at once.

Global policies are *not* optimal and synchronous release is not
necessarily their worst case — so unlike the partitioned simulator this
one certifies nothing; it demonstrates behaviour.  Two classics it
reproduces (see the test suite):

* the **Dhall effect**: global RM/EDF can miss deadlines at total
  utilization barely above 1 on m machines where partitioning is trivial;
* the converse: task sets no partition can schedule that migration
  handles comfortably (three 2/3-utilization tasks on two unit machines).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from ..core.model import Task
from .engine import TIME_EPS, EventQueue
from .jobs import Job, JobSource
from .policies import SchedulingPolicy, policy_by_name
from .trace import JobRecord

__all__ = ["GlobalSegment", "GlobalTrace", "simulate_global"]


@dataclass(frozen=True)
class GlobalSegment:
    """One job running on one machine for an interval."""

    machine: int
    start: float
    end: float
    task_index: int
    job_id: int

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass(frozen=True)
class GlobalTrace:
    """Execution record of a global schedule."""

    speeds: tuple[float, ...]
    horizon: float
    policy_name: str
    segments: tuple[GlobalSegment, ...]
    jobs: tuple[JobRecord, ...]

    @property
    def any_miss(self) -> bool:
        return any(j.missed for j in self.jobs)

    @property
    def misses(self) -> tuple[JobRecord, ...]:
        return tuple(j for j in self.jobs if j.missed)

    @property
    def migrations(self) -> int:
        """Number of times a job resumed on a different machine."""
        last: dict[tuple[int, int], int] = {}
        count = 0
        for seg in sorted(self.segments, key=lambda s: s.start):
            key = (seg.task_index, seg.job_id)
            if key in last and last[key] != seg.machine:
                count += 1
            last[key] = seg.machine
        return count


def simulate_global(
    tasks: Sequence[Task],
    speeds: Sequence[float],
    policy: SchedulingPolicy | str,
    sources: Sequence[JobSource],
    horizon: float,
) -> GlobalTrace:
    """Simulate global preemptive scheduling over ``[0, horizon]``.

    Machines are used fastest-first: the k-th highest-priority ready job
    runs on the k-th fastest machine.
    """
    if not speeds or any(s <= 0 for s in speeds):
        raise ValueError("speeds must be positive and non-empty")
    if horizon < 0:
        raise ValueError("horizon must be non-negative")
    if isinstance(policy, str):
        policy = policy_by_name(policy)

    order = sorted(range(len(speeds)), key=lambda j: -speeds[j])  # fastest first
    m = len(speeds)

    releases: EventQueue[int] = EventQueue()
    for si, src in enumerate(sources):
        if src.peek() < horizon - TIME_EPS:
            releases.push(src.peek(), si)

    t = 0.0
    ready: list[Job] = []
    all_jobs: list[Job] = []
    completions: dict[tuple[int, int], float] = {}
    raw: list[GlobalSegment] = []

    def admit(now: float) -> None:
        while releases and releases.peek_time() <= now + TIME_EPS:
            _, si = releases.pop()
            src = sources[si]
            job = src.pop()
            ready.append(job)
            all_jobs.append(job)
            if src.peek() < horizon - TIME_EPS:
                releases.push(src.peek(), si)

    admit(t)
    while True:
        if not ready:
            nxt = releases.peek_time()
            if math.isinf(nxt) or nxt >= horizon - TIME_EPS:
                break
            t = nxt
            admit(t)
            continue

        ranked = sorted(ready, key=lambda j: policy.key(j, tasks))
        running = ranked[:m]  # job k on the k-th fastest machine
        finish = min(
            t + job.remaining / speeds[order[k]]
            for k, job in enumerate(running)
        )
        event = min(finish, releases.peek_time(), horizon)

        if event > t + TIME_EPS:
            for k, job in enumerate(running):
                machine = order[k]
                raw.append(
                    GlobalSegment(
                        machine=machine,
                        start=t,
                        end=event,
                        task_index=job.task_index,
                        job_id=job.job_id,
                    )
                )
                job.remaining -= (event - t) * speeds[machine]
        t = event

        for job in list(running):
            if job.remaining <= TIME_EPS * max(1.0, job.work):
                job.remaining = 0.0
                completions[(job.task_index, job.job_id)] = t
                ready.remove(job)

        if t >= horizon - TIME_EPS:
            break
        admit(t)

    records = []
    for job in all_jobs:
        comp = completions.get((job.task_index, job.job_id))
        if comp is not None:
            missed = comp > job.deadline + TIME_EPS
        else:
            missed = job.deadline <= horizon + TIME_EPS
        records.append(
            JobRecord(
                task_index=job.task_index,
                job_id=job.job_id,
                release=job.release,
                deadline=job.deadline,
                work=job.work,
                completion=comp,
                missed=missed,
            )
        )

    # merge back-to-back segments of the same (job, machine)
    merged: list[GlobalSegment] = []
    for seg in sorted(raw, key=lambda s: (s.machine, s.start)):
        if (
            merged
            and merged[-1].machine == seg.machine
            and merged[-1].task_index == seg.task_index
            and merged[-1].job_id == seg.job_id
            and abs(merged[-1].end - seg.start) <= TIME_EPS
        ):
            merged[-1] = GlobalSegment(
                machine=seg.machine,
                start=merged[-1].start,
                end=seg.end,
                task_index=seg.task_index,
                job_id=seg.job_id,
            )
        else:
            merged.append(seg)

    return GlobalTrace(
        speeds=tuple(speeds),
        horizon=horizon,
        policy_name=policy.name,
        segments=tuple(merged),
        jobs=tuple(records),
    )
