"""Jobs and release-pattern sources for the schedule simulator.

A sporadic task releases jobs at least ``p_i`` apart (§II).  Two release
patterns matter for the evaluation:

* **periodic, synchronous** (:class:`PeriodicSource`): releases at
  ``0, p, 2p, ...``.  This is the densest legal sporadic pattern and the
  critical instant for both EDF and RMS, so "no misses under synchronous
  periodic release up to the hyperperiod" certifies the sporadic task set
  (for implicit deadlines).
* **sporadic with random gaps** (:class:`SporadicSource`): inter-release
  times ``p * (1 + X)`` with ``X ~ Exp(jitter)`` — exercises the general
  model in integration tests.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from ..core.model import Task

__all__ = ["Job", "JobSource", "PeriodicSource", "SporadicSource"]


@dataclass
class Job:
    """One released job instance."""

    task_index: int
    job_id: int
    release: float
    deadline: float  # absolute
    work: float  # total work (on a unit-speed machine)
    remaining: float  # work still to execute

    @property
    def completed(self) -> bool:
        return self.remaining <= 0.0


class JobSource(ABC):
    """A stream of job releases for one task."""

    def __init__(self, task: Task, task_index: int):
        self.task = task
        self.task_index = task_index
        self._count = 0

    @abstractmethod
    def peek(self) -> float:
        """Release time of the next job (may be +inf if exhausted)."""

    def pop(self) -> Job:
        """Materialize the next job and advance the stream."""
        release = self.peek()
        job = Job(
            task_index=self.task_index,
            job_id=self._count,
            release=release,
            deadline=release + self.task.deadline,
            work=self.task.wcet,
            remaining=self.task.wcet,
        )
        self._count += 1
        self._advance()
        return job

    @abstractmethod
    def _advance(self) -> None:
        """Move to the next release."""


class PeriodicSource(JobSource):
    """Strictly periodic releases at ``offset + k * period``."""

    def __init__(self, task: Task, task_index: int, *, offset: float = 0.0):
        if offset < 0:
            raise ValueError("offset must be non-negative")
        super().__init__(task, task_index)
        self._next = offset

    def peek(self) -> float:
        return self._next

    def _advance(self) -> None:
        self._next += self.task.period


class SporadicSource(JobSource):
    """Sporadic releases: gaps of ``period * (1 + Exp(jitter))``.

    ``jitter = 0`` degenerates to periodic.  Gaps are always at least one
    period, respecting the sporadic constraint.
    """

    def __init__(
        self,
        task: Task,
        task_index: int,
        rng: np.random.Generator,
        *,
        jitter: float = 0.2,
        offset: float = 0.0,
    ):
        if jitter < 0:
            raise ValueError("jitter must be non-negative")
        if offset < 0:
            raise ValueError("offset must be non-negative")
        super().__init__(task, task_index)
        self._rng = rng
        self._jitter = jitter
        self._next = offset

    def peek(self) -> float:
        return self._next

    def _advance(self) -> None:
        extra = self._rng.exponential(self._jitter) if self._jitter > 0 else 0.0
        self._next += self.task.period * (1.0 + extra)
