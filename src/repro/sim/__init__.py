"""Discrete-event schedule simulator: jobs, policies, traces, validators."""

from .engine import TIME_EPS, EventQueue
from .gantt import render_gantt
from .global_sched import GlobalSegment, GlobalTrace, simulate_global
from .global_validators import validate_global_trace
from .hyperperiod import default_horizon, hyperperiod
from .jobs import Job, JobSource, PeriodicSource, SporadicSource
from .multiprocessor import PartitionedSimulation, simulate_partitioned
from .policies import EDFPolicy, RMSPolicy, SchedulingPolicy, policy_by_name
from .trace import JobRecord, Segment, Trace
from .uniprocessor import simulate_taskset_on_machine, simulate_uniprocessor
from .validators import validate_all, validate_policy_compliance, validate_trace

__all__ = [
    "TIME_EPS",
    "EventQueue",
    "render_gantt",
    "GlobalSegment",
    "GlobalTrace",
    "simulate_global",
    "validate_global_trace",
    "default_horizon",
    "hyperperiod",
    "Job",
    "JobSource",
    "PeriodicSource",
    "SporadicSource",
    "PartitionedSimulation",
    "simulate_partitioned",
    "EDFPolicy",
    "RMSPolicy",
    "SchedulingPolicy",
    "policy_by_name",
    "JobRecord",
    "Segment",
    "Trace",
    "simulate_taskset_on_machine",
    "simulate_uniprocessor",
    "validate_all",
    "validate_policy_compliance",
    "validate_trace",
]
