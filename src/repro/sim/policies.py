"""Preemptive uniprocessor scheduling policies.

A policy is a priority key over ready jobs; the simulator always runs the
ready job with the smallest key and re-evaluates at every release (full
preemption).  Keys are total orders (ties broken by job identity) so
schedules are deterministic and replayable.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Sequence

from ..core.model import Task
from .jobs import Job

__all__ = ["SchedulingPolicy", "EDFPolicy", "RMSPolicy", "policy_by_name"]


class SchedulingPolicy(ABC):
    """Priority-key scheduling policy (lower key = higher priority)."""

    name: str = ""

    @abstractmethod
    def key(self, job: Job, tasks: Sequence[Task]) -> tuple:
        """Total-order priority key for ``job``."""


class EDFPolicy(SchedulingPolicy):
    """Earliest Deadline First — dynamic priorities by absolute deadline.

    Optimal on a uniprocessor (Theorem II.2 is its exact test for
    implicit-deadline sporadic tasks).
    """

    name = "edf"

    def key(self, job: Job, tasks: Sequence[Task]) -> tuple:
        return (job.deadline, job.release, job.task_index, job.job_id)


class RMSPolicy(SchedulingPolicy):
    """Rate-Monotonic — static priorities, shorter period first.

    All jobs of one task share the same priority relative to other tasks'
    jobs (the property that motivates RMS in the paper's §I).
    """

    name = "rms"

    def key(self, job: Job, tasks: Sequence[Task]) -> tuple:
        return (tasks[job.task_index].period, job.task_index, job.job_id)


_POLICIES: dict[str, SchedulingPolicy] = {
    p.name: p for p in (EDFPolicy(), RMSPolicy())
}


def policy_by_name(name: str) -> SchedulingPolicy:
    """Look up a policy (``edf`` or ``rms``)."""
    try:
        return _POLICIES[name]
    except KeyError:
        raise KeyError(
            f"unknown policy {name!r}; known: {sorted(_POLICIES)}"
        ) from None
