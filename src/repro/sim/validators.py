"""Independent trace validators.

These re-derive every invariant a correct preemptive schedule must
satisfy *from the trace alone*, without trusting the simulator: interval
sanity, work conservation per job, completion/miss bookkeeping, priority
compliance (the running job is always a highest-priority ready job, with
preemption at releases), and work-conserving idling.  The test suite runs
them over randomized simulations; experiments may run them as sanity
rails.

Each validator returns a list of human-readable violation strings —
empty means clean.
"""

from __future__ import annotations

from typing import Sequence

from ..core.model import Task
from .engine import TIME_EPS
from .jobs import Job
from .policies import policy_by_name
from .trace import JobRecord, Trace

__all__ = ["validate_trace", "validate_policy_compliance", "validate_all"]

_WORK_EPS = 1e-6


def _job_key(record: JobRecord) -> tuple[int, int]:
    return (record.task_index, record.job_id)


def validate_trace(trace: Trace, tasks: Sequence[Task]) -> list[str]:
    """Structural and accounting invariants."""
    errors: list[str] = []
    records = {_job_key(r): r for r in trace.jobs}

    prev_end = 0.0
    for k, seg in enumerate(trace.segments):
        if seg.end <= seg.start + 0.0:
            errors.append(f"segment {k}: non-positive duration {seg}")
        if seg.start < prev_end - TIME_EPS:
            errors.append(f"segment {k}: overlaps previous (starts {seg.start} < {prev_end})")
        if seg.start < -TIME_EPS or seg.end > trace.horizon + TIME_EPS:
            errors.append(f"segment {k}: outside [0, horizon] {seg}")
        key = (seg.task_index, seg.job_id)
        rec = records.get(key)
        if rec is None:
            errors.append(f"segment {k}: no job record for {key}")
        elif seg.start < rec.release - TIME_EPS:
            errors.append(
                f"segment {k}: job {key} ran at {seg.start} before release {rec.release}"
            )
        prev_end = max(prev_end, seg.end)

    executed: dict[tuple[int, int], float] = {}
    last_end: dict[tuple[int, int], float] = {}
    for seg in trace.segments:
        key = (seg.task_index, seg.job_id)
        executed[key] = executed.get(key, 0.0) + seg.duration * trace.machine_speed
        last_end[key] = seg.end

    for key, rec in records.items():
        done = executed.get(key, 0.0)
        if rec.completion is not None:
            if abs(done - rec.work) > _WORK_EPS * max(1.0, rec.work):
                errors.append(
                    f"job {key}: completed with {done} executed, work is {rec.work}"
                )
            if key in last_end and abs(last_end[key] - rec.completion) > TIME_EPS:
                errors.append(
                    f"job {key}: completion {rec.completion} != last segment end {last_end[key]}"
                )
            expect_missed = rec.completion > rec.deadline + TIME_EPS
            if rec.missed != expect_missed:
                errors.append(
                    f"job {key}: missed flag {rec.missed} inconsistent with "
                    f"completion {rec.completion} vs deadline {rec.deadline}"
                )
        else:
            if done > rec.work * (1.0 + _WORK_EPS) + _WORK_EPS:
                errors.append(
                    f"job {key}: executed {done} exceeds work {rec.work} yet incomplete"
                )
            expect_missed = rec.deadline <= trace.horizon + TIME_EPS
            if rec.missed != expect_missed:
                errors.append(
                    f"job {key}: incomplete, missed flag {rec.missed} vs deadline "
                    f"{rec.deadline} and horizon {trace.horizon}"
                )
    return errors


def validate_policy_compliance(trace: Trace, tasks: Sequence[Task]) -> list[str]:
    """Priority and work-conservation compliance.

    Replays the trace chronologically in a single sweep (O((S + J) log J)
    for S segments and J jobs): at every segment start the running job
    must have a minimal priority key among ready incomplete jobs; no
    higher-priority release may occur strictly inside a segment; the
    machine may not idle while a ready incomplete job exists.
    """
    errors: list[str] = []
    policy = policy_by_name(trace.policy_name)

    # Reconstruct Job shims for key computation.
    shims: dict[tuple[int, int], Job] = {}
    for rec in trace.jobs:
        shims[_job_key(rec)] = Job(
            task_index=rec.task_index,
            job_id=rec.job_id,
            release=rec.release,
            deadline=rec.deadline,
            work=rec.work,
            remaining=rec.work,
        )

    releases = sorted(
        ((rec.release, _job_key(rec)) for rec in trace.jobs),
        key=lambda rk: rk[0],
    )

    # Jobs recorded as missed-and-incomplete may have been *aborted* at
    # their deadline (firm-deadline simulation, on_miss='abort'); after
    # that instant they are no longer schedulable, so they must not count
    # as ready.  Continue-mode traces never idle past such a job anyway,
    # so the relaxation cannot create false negatives there either way.
    abort_time = {
        _job_key(rec): rec.deadline
        for rec in trace.jobs
        if rec.completion is None and rec.missed
    }

    # Sweep state: jobs released so far and not yet finished ("active"),
    # plus executed work per job.
    active: dict[tuple[int, int], Job] = {}
    executed: dict[tuple[int, int], float] = {}
    release_ptr = 0

    def admit_up_to(time: float) -> None:
        nonlocal release_ptr
        while release_ptr < len(releases) and releases[release_ptr][0] <= time + TIME_EPS:
            _, key = releases[release_ptr]
            active[key] = shims[key]
            release_ptr += 1
        for key in [
            k for k in active if k in abort_time and abort_time[k] <= time + TIME_EPS
        ]:
            del active[key]

    def check_no_ready_at(label: str, time: float, exclude=None) -> None:
        """No active job (except `exclude`) may exist — used for idle gaps."""
        for key, job in active.items():
            if key == exclude:
                continue
            errors.append(
                f"{label} while job ({job.task_index},{job.job_id}) was ready"
            )
            return

    # Interleave idle-gap checks with segments in one chronological pass.
    prev_end = 0.0
    for k, seg in enumerate(trace.segments):
        if seg.start > prev_end + TIME_EPS:
            # idle gap [prev_end, seg.start): anything released by
            # prev_end and unfinished violates work conservation
            admit_up_to(prev_end)
            check_no_ready_at(f"idle gap [{prev_end}, {seg.start}]", prev_end)

        admit_up_to(seg.start)
        seg_key = (seg.task_index, seg.job_id)
        running = shims.get(seg_key)
        if running is None:
            prev_end = max(prev_end, seg.end)
            continue  # validate_trace reports the phantom segment
        run_key = policy.key(running, tasks)
        for key, job in active.items():
            if key == seg_key:
                continue
            if policy.key(job, tasks) < run_key:
                errors.append(
                    f"segment {k}: job ({seg.task_index},{seg.job_id}) ran at "
                    f"{seg.start} while higher-priority "
                    f"({job.task_index},{job.job_id}) was ready"
                )
                break

        # releases strictly inside the segment must not outrank the runner
        probe = release_ptr
        while probe < len(releases) and releases[probe][0] < seg.end - TIME_EPS:
            rel, key = releases[probe]
            if rel > seg.start + TIME_EPS and policy.key(shims[key], tasks) < run_key:
                errors.append(
                    f"segment {k}: higher-priority release of {key} at {rel} "
                    f"did not preempt ({seg.task_index},{seg.job_id})"
                )
                break
            probe += 1

        executed[seg_key] = executed.get(seg_key, 0.0) + seg.duration * trace.machine_speed
        if executed[seg_key] >= running.work * (1.0 - _WORK_EPS):
            active.pop(seg_key, None)
        prev_end = max(prev_end, seg.end)

    if trace.horizon > prev_end + TIME_EPS:
        admit_up_to(prev_end)
        check_no_ready_at(
            f"idle gap [{prev_end}, {trace.horizon}]", prev_end
        )
    return errors


def validate_all(trace: Trace, tasks: Sequence[Task]) -> list[str]:
    """All validators combined."""
    return validate_trace(trace, tasks) + validate_policy_compliance(trace, tasks)
