"""repro — partitioned feasibility tests for sporadic tasks on
heterogeneous (related) machines.

Reproduction of *Ahuja, Lu, Moseley, "Partitioned Feasibility Tests for
Sporadic Tasks on Heterogeneous Machines" (IPPS 2016)*: the §III first-fit
partitioner, the four approximate feasibility tests (Theorems I.1–I.4),
the §II feasibility LP, exact adversaries, a discrete-event schedule
simulator, synthetic workload generators, and the E1–E17 evaluation suite.

Quickstart::

    from repro import TaskSet, Task, Platform, edf_test_vs_partitioned

    tasks = TaskSet([Task(wcet=2, period=10), Task(wcet=6, period=8)])
    platform = Platform.from_speeds([1.0, 2.0])
    report = edf_test_vs_partitioned(tasks, platform)
    print(report.guarantee)
"""

from .core import (
    ALPHA_EDF_LP,
    ALPHA_EDF_PARTITIONED,
    ALPHA_RMS_LP,
    ALPHA_RMS_PARTITIONED,
    FeasibilityReport,
    Machine,
    PartitionResult,
    Platform,
    Task,
    TaskSet,
    edf_test_vs_any,
    edf_test_vs_partitioned,
    feasibility_test,
    first_fit_partition,
    lp_feasible,
    lp_stress,
    rms_test_vs_any,
    rms_test_vs_partitioned,
)

__version__ = "1.0.0"

__all__ = [
    "ALPHA_EDF_LP",
    "ALPHA_EDF_PARTITIONED",
    "ALPHA_RMS_LP",
    "ALPHA_RMS_PARTITIONED",
    "FeasibilityReport",
    "Machine",
    "PartitionResult",
    "Platform",
    "Task",
    "TaskSet",
    "edf_test_vs_any",
    "edf_test_vs_partitioned",
    "feasibility_test",
    "first_fit_partition",
    "lp_feasible",
    "lp_stress",
    "rms_test_vs_any",
    "rms_test_vs_partitioned",
    "__version__",
]
