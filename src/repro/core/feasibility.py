"""The paper's four approximate feasibility tests (Theorems I.1–I.4).

An *alpha-approximate feasibility test* answers:

* **accepted** — the task set is schedulable (by the stated partitioned
  scheduler) on machines running ``alpha`` times faster than specified;
  the returned partition, with EDF/RMS per machine, is a witness.
* **rejected** — *no* scheduler of the adversary class can meet all
  deadlines on the machines at their original speeds.

The scheduler/adversary combinations and their alphas:

==========  ============  ===========================  ======
Theorem     per-machine   adversary                    alpha
==========  ============  ===========================  ======
I.1         EDF           partitioned (any per-mach.)  2
I.2         RMS (LL)      partitioned                  1+sqrt2
I.3         EDF           any (the §II LP)             2.98
I.4         RMS (LL)      any (the §II LP)             3.34
==========  ============  ===========================  ======

All four run the same §III first-fit algorithm, differing only in the
admission test and speed augmentation.  On rejection versus a partitioned
adversary, the report carries an independently checkable
:class:`~repro.core.certificates.FailureCertificate`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal

from .certificates import (
    FailureCertificate,
    partitioned_infeasibility_certificate,
)
from .constants import (
    ALPHA_EDF_LP,
    ALPHA_EDF_PARTITIONED,
    ALPHA_RMS_LP,
    ALPHA_RMS_PARTITIONED,
)
from .model import Platform, TaskSet
from .partition import PartitionResult, first_fit_partition

__all__ = [
    "Scheduler",
    "Adversary",
    "theorem_alpha",
    "FeasibilityReport",
    "feasibility_test",
    "edf_test_vs_partitioned",
    "edf_test_vs_any",
    "rms_test_vs_partitioned",
    "rms_test_vs_any",
]

Scheduler = Literal["edf", "rms"]
Adversary = Literal["partitioned", "any"]

_ALPHAS: dict[tuple[Scheduler, Adversary], tuple[float, str]] = {
    ("edf", "partitioned"): (ALPHA_EDF_PARTITIONED, "I.1"),
    ("rms", "partitioned"): (ALPHA_RMS_PARTITIONED, "I.2"),
    ("edf", "any"): (ALPHA_EDF_LP, "I.3"),
    ("rms", "any"): (ALPHA_RMS_LP, "I.4"),
}

_TEST_NAME: dict[Scheduler, str] = {"edf": "edf", "rms": "rms-ll"}


def theorem_alpha(scheduler: Scheduler, adversary: Adversary) -> float:
    """The speed augmentation proved sufficient for the combination."""
    try:
        return _ALPHAS[(scheduler, adversary)][0]
    except KeyError:
        raise ValueError(
            f"unknown combination scheduler={scheduler!r} adversary={adversary!r}"
        ) from None


@dataclass(frozen=True)
class FeasibilityReport:
    """Outcome of one approximate feasibility test."""

    accepted: bool
    scheduler: Scheduler
    adversary: Adversary
    alpha: float
    theorem: str
    partition: PartitionResult
    #: partitioned-infeasibility evidence (rejections only; always built,
    #: but only guaranteed to certify at the partitioned-adversary alphas)
    certificate: FailureCertificate | None

    @property
    def guarantee(self) -> str:
        """Human-readable statement of what the verdict proves."""
        if self.accepted:
            return (
                f"schedulable: the returned partition meets all deadlines with "
                f"{self.scheduler.upper()} per machine once each machine runs "
                f"{self.alpha:g}x faster (Theorem {self.theorem})"
            )
        who = (
            "no partitioned scheduler"
            if self.adversary == "partitioned"
            else "no scheduler at all (even migratory)"
        )
        return (
            f"infeasible: {who} can meet all deadlines on the machines at "
            f"their original speeds (Theorem {self.theorem})"
        )


def feasibility_test(
    taskset: TaskSet,
    platform: Platform,
    scheduler: Scheduler = "edf",
    adversary: Adversary = "partitioned",
    *,
    alpha: float | None = None,
) -> FeasibilityReport:
    """Run the §III first-fit test for the given theorem configuration.

    Parameters
    ----------
    alpha:
        Override the speed augmentation (defaults to the theorem's value).
        The approximation guarantee only holds at or above the theorem's
        alpha; smaller values are useful for empirical-ratio experiments.
    """
    if not taskset.is_implicit:
        raise ValueError(
            "the theorem tests require implicit deadlines (the paper's "
            "model); for constrained deadlines partition with the "
            "'edf-dbf' admission test instead"
        )
    a, theorem = _ALPHAS[(scheduler, adversary)]
    if alpha is not None:
        if alpha <= 0:
            raise ValueError("alpha must be positive")
        a = alpha
    result = first_fit_partition(
        taskset, platform, _TEST_NAME[scheduler], alpha=a
    )
    certificate: FailureCertificate | None = None
    if not result.success:
        certificate = partitioned_infeasibility_certificate(
            taskset, platform, result
        )
    return FeasibilityReport(
        accepted=result.success,
        scheduler=scheduler,
        adversary=adversary,
        alpha=a,
        theorem=theorem,
        partition=result,
        certificate=certificate,
    )


def edf_test_vs_partitioned(
    taskset: TaskSet, platform: Platform
) -> FeasibilityReport:
    """Theorem I.1: 2-approximate EDF test vs a partitioned adversary."""
    return feasibility_test(taskset, platform, "edf", "partitioned")


def edf_test_vs_any(taskset: TaskSet, platform: Platform) -> FeasibilityReport:
    """Theorem I.3: 2.98-approximate EDF test vs any adversary."""
    return feasibility_test(taskset, platform, "edf", "any")


def rms_test_vs_partitioned(
    taskset: TaskSet, platform: Platform
) -> FeasibilityReport:
    """Theorem I.2: (1+sqrt2)-approximate RMS test vs a partitioned adversary."""
    return feasibility_test(taskset, platform, "rms", "partitioned")


def rms_test_vs_any(taskset: TaskSet, platform: Platform) -> FeasibilityReport:
    """Theorem I.4: 3.34-approximate RMS test vs any adversary."""
    return feasibility_test(taskset, platform, "rms", "any")
