"""Single-machine schedulability tests and admission-test objects.

The paper's algorithm (§III) assigns a task to the first machine that
passes a *single-machine feasibility test* with the machine's (speed-
augmented) speed:

* EDF (Theorem II.2, Liu & Layland): a set ``S`` is schedulable on a
  speed-``s`` machine iff ``sum_{i in S} w_i <= s``.  For implicit
  deadlines this utilization test is exact.
* RMS (Theorem II.3, Liu & Layland): ``S`` is schedulable if
  ``sum_{i in S} w_i <= |S| (2^{1/|S|} - 1) s``; the bound decreases to
  ``ln 2`` as ``|S| -> inf``.  This test is sufficient, not necessary.

Beyond the paper we also provide the hyperbolic bound (Bini & Buttazzo)
and exact response-time analysis (:mod:`repro.core.rta`) so the exact
partitioned-RMS adversary and the pessimism study (experiment E3) can be
built.

Admission tests are exposed in two forms:

* plain functions ``*_feasible(tasks, speed)`` for one-shot checks, and
* :class:`AdmissionTest` objects that keep per-machine incremental state,
  which is what makes the first-fit partitioner run in ``O(nm)`` overall
  for the O(1)-state tests, matching the paper's complexity claim.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Iterable, Sequence

from .model import Task, leq
from .rta import rms_response_times

__all__ = [
    "liu_layland_bound",
    "edf_utilization_feasible",
    "rms_liu_layland_feasible",
    "rms_hyperbolic_feasible",
    "rms_rta_feasible",
    "MachineState",
    "AdmissionTest",
    "EDFUtilizationTest",
    "RMSLiuLaylandTest",
    "RMSHyperbolicTest",
    "RMSResponseTimeTest",
    "admission_test",
    "ADMISSION_TESTS",
]

LN2 = math.log(2.0)


def liu_layland_bound(n: int) -> float:
    """The Liu–Layland RMS utilization bound ``n (2^{1/n} - 1)``.

    ``liu_layland_bound(1) == 1``; the bound decreases monotonically to
    ``ln 2 ~= 0.6931`` as ``n`` grows.  ``n == 0`` returns 1.0 (an empty
    machine accepts anything that fits alone).
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    if n == 0:
        return 1.0
    return n * (2.0 ** (1.0 / n) - 1.0)


def _total_utilization(tasks: Iterable[Task]) -> float:
    return math.fsum(t.utilization for t in tasks)


def edf_utilization_feasible(tasks: Sequence[Task], speed: float) -> bool:
    """Theorem II.2: EDF schedules ``tasks`` on a speed-``speed`` machine
    iff their total utilization is at most ``speed`` (exact test)."""
    return leq(_total_utilization(tasks), speed)


def rms_liu_layland_feasible(tasks: Sequence[Task], speed: float) -> bool:
    """Theorem II.3: sufficient RMS test ``sum w_i <= n (2^{1/n}-1) s``."""
    n = len(tasks)
    if n == 0:
        return True
    return leq(_total_utilization(tasks), liu_layland_bound(n) * speed)


def rms_hyperbolic_feasible(tasks: Sequence[Task], speed: float) -> bool:
    """Bini–Buttazzo hyperbolic bound: ``prod (w_i/s + 1) <= 2``.

    Sufficient for RMS; strictly dominates the Liu–Layland bound (accepts
    every LL-accepted set and more).  Not part of the paper's algorithm —
    used for the pessimism study (E3).

    The early exit uses the same relative-tolerance :func:`leq` as the
    final verdict: the factors are all >= 1, so once a partial product
    fails ``leq(prod, 2.0)`` the full product fails it too, and the exit
    can never flip a verdict the complete product would accept.
    """
    prod = 1.0
    for t in tasks:
        prod *= t.utilization / speed + 1.0
        if not leq(prod, 2.0):
            return False
    return True


def rms_rta_feasible(tasks: Sequence[Task], speed: float) -> bool:
    """Exact RMS test via response-time analysis (implicit deadlines,
    preemptive, rate-monotonic priorities)."""
    return rms_response_times(tasks, speed) is not None


# ---------------------------------------------------------------------------
# Incremental admission tests for the partitioner
# ---------------------------------------------------------------------------


class _NeumaierSum:
    """Compensated (Neumaier) accumulator for per-machine load.

    The one-shot set tests sum utilizations with ``math.fsum``; if the
    incremental states accumulated with plain ``+=`` the two paths could
    drift apart by enough floating-point noise to flip a verdict on a
    boundary instance — the partitioner would then accept a set that
    ``verify_partition`` rejects (or vice versa).  Neumaier summation
    keeps the running total within one rounding of the exact sum, far
    inside the :data:`~repro.core.model.EPS` comparison tolerance, so the
    incremental and one-shot verdicts always agree.
    """

    __slots__ = ("_sum", "_comp")

    def __init__(self) -> None:
        self._sum = 0.0
        self._comp = 0.0

    def add(self, x: float) -> None:
        # the compensated accumulator is the primitive REP004 points at;
        # its own error-term updates are the one legitimate bare +=
        s = self._sum + x
        if abs(self._sum) >= abs(x):
            self._comp += (self._sum - s) + x  # repro: noqa[REP004]
        else:
            self._comp += (x - s) + self._sum  # repro: noqa[REP004]
        self._sum = s

    def peek(self, x: float) -> float:
        """The compensated total if ``x`` were added (state unchanged)."""
        s = self._sum + x
        if abs(self._sum) >= abs(x):
            comp = self._comp + ((self._sum - s) + x)
        else:
            comp = self._comp + ((x - s) + self._sum)
        return s + comp

    @property
    def total(self) -> float:
        return self._sum + self._comp


class MachineState(ABC):
    """Incremental per-machine schedulability state.

    One state is opened per machine with the machine's *effective*
    (possibly speed-augmented) speed; the partitioner asks :meth:`admits`
    for each candidate and calls :meth:`add` when it assigns a task.
    """

    __slots__ = ("speed",)

    def __init__(self, speed: float):
        if speed <= 0:
            raise ValueError("machine speed must be positive")
        self.speed = speed

    @abstractmethod
    def admits(self, task: Task) -> bool:
        """Would the machine remain schedulable with ``task`` added?"""

    @abstractmethod
    def add(self, task: Task) -> None:
        """Commit ``task`` to the machine.  Caller checks :meth:`admits` first."""

    @property
    @abstractmethod
    def load(self) -> float:
        """Total utilization currently assigned."""

    @property
    @abstractmethod
    def count(self) -> int:
        """Number of tasks currently assigned."""


class AdmissionTest(ABC):
    """Factory for :class:`MachineState`, plus a one-shot set test."""

    #: short identifier used in results/CLI
    name: str = ""

    @abstractmethod
    def open(self, speed: float) -> MachineState:
        """New empty machine state for a machine of effective speed ``speed``."""

    @abstractmethod
    def feasible(self, tasks: Sequence[Task], speed: float) -> bool:
        """One-shot test of a complete set on a speed-``speed`` machine."""


class _EDFState(MachineState):
    __slots__ = ("_load", "_count")

    def __init__(self, speed: float):
        super().__init__(speed)
        self._load = _NeumaierSum()
        self._count = 0

    def admits(self, task: Task) -> bool:
        return leq(self._load.peek(task.utilization), self.speed)

    def add(self, task: Task) -> None:
        self._load.add(task.utilization)
        self._count += 1

    @property
    def load(self) -> float:
        return self._load.total

    @property
    def count(self) -> int:
        return self._count


class EDFUtilizationTest(AdmissionTest):
    """Theorem II.2 admission: ``load + w <= speed``.  O(1) per query."""

    name = "edf"

    def open(self, speed: float) -> MachineState:
        return _EDFState(speed)

    def feasible(self, tasks: Sequence[Task], speed: float) -> bool:
        return edf_utilization_feasible(tasks, speed)


class _RMSLLState(MachineState):
    __slots__ = ("_load", "_count")

    def __init__(self, speed: float):
        super().__init__(speed)
        self._load = _NeumaierSum()
        self._count = 0

    def admits(self, task: Task) -> bool:
        bound = liu_layland_bound(self._count + 1) * self.speed
        return leq(self._load.peek(task.utilization), bound)

    def add(self, task: Task) -> None:
        self._load.add(task.utilization)
        self._count += 1

    @property
    def load(self) -> float:
        return self._load.total

    @property
    def count(self) -> int:
        return self._count


class RMSLiuLaylandTest(AdmissionTest):
    """Theorem II.3 admission: ``load + w <= (k+1)(2^{1/(k+1)}-1) speed``.

    This is the admission rule the paper's RMS algorithm uses (§III).
    O(1) per query.
    """

    name = "rms-ll"

    def open(self, speed: float) -> MachineState:
        return _RMSLLState(speed)

    def feasible(self, tasks: Sequence[Task], speed: float) -> bool:
        return rms_liu_layland_feasible(tasks, speed)


class _RMSHyperbolicState(MachineState):
    __slots__ = ("_product", "_load", "_count")

    def __init__(self, speed: float):
        super().__init__(speed)
        self._product = 1.0
        self._load = _NeumaierSum()
        self._count = 0

    def admits(self, task: Task) -> bool:
        return leq(self._product * (task.utilization / self.speed + 1.0), 2.0)

    def add(self, task: Task) -> None:
        self._product *= task.utilization / self.speed + 1.0
        self._load.add(task.utilization)
        self._count += 1

    @property
    def load(self) -> float:
        return self._load.total

    @property
    def count(self) -> int:
        return self._count


class RMSHyperbolicTest(AdmissionTest):
    """Hyperbolic-bound admission: ``prod (w_i/s + 1) <= 2``.  O(1) per query."""

    name = "rms-hyperbolic"

    def open(self, speed: float) -> MachineState:
        return _RMSHyperbolicState(speed)

    def feasible(self, tasks: Sequence[Task], speed: float) -> bool:
        return rms_hyperbolic_feasible(tasks, speed)


class _RMSRTAState(MachineState):
    __slots__ = ("_tasks", "_load")

    def __init__(self, speed: float):
        super().__init__(speed)
        self._tasks: list[Task] = []
        self._load = _NeumaierSum()

    def admits(self, task: Task) -> bool:
        return rms_rta_feasible(self._tasks + [task], self.speed)

    def add(self, task: Task) -> None:
        self._tasks.append(task)
        self._load.add(task.utilization)

    @property
    def load(self) -> float:
        return self._load.total

    @property
    def count(self) -> int:
        return len(self._tasks)


class RMSResponseTimeTest(AdmissionTest):
    """Exact RMS admission via response-time analysis.

    Pseudo-polynomial per query (not O(1)); provided for the exact
    partitioned-RMS adversary and the pessimism study, not as part of the
    paper's O(nm) algorithm.
    """

    name = "rms-rta"

    def open(self, speed: float) -> MachineState:
        return _RMSRTAState(speed)

    def feasible(self, tasks: Sequence[Task], speed: float) -> bool:
        return rms_rta_feasible(tasks, speed)


#: Registry of admission tests by name.
ADMISSION_TESTS: dict[str, AdmissionTest] = {
    t.name: t
    for t in (
        EDFUtilizationTest(),
        RMSLiuLaylandTest(),
        RMSHyperbolicTest(),
        RMSResponseTimeTest(),
    )
}


def admission_test(name: str) -> AdmissionTest:
    """Look up an admission test by name (``edf``, ``rms-ll``,
    ``rms-hyperbolic``, ``rms-rta``)."""
    try:
        return ADMISSION_TESTS[name]
    except KeyError:
        raise KeyError(
            f"unknown admission test {name!r}; known: {sorted(ADMISSION_TESTS)}"
        ) from None
