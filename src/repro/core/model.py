"""Task, task-set, machine and platform models.

The paper's setting (§II): a sporadic implicit-deadline task set
``tau_1 .. tau_n`` where task ``tau_i`` releases jobs with worst-case
execution requirement ``c_i`` (work, measured on a unit-speed machine) at
least ``p_i`` time units apart; each job must finish within ``p_i`` of its
release.  Tasks are scheduled on ``m`` *related* (uniform) machines with
speeds ``s_1 <= ... <= s_m``: a machine of speed ``s`` performs ``s`` units
of work per unit of time.

The central derived quantity is the *utilization* ``w_i = c_i / p_i`` of a
task: the long-run fraction of a unit-speed machine the task demands.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

__all__ = [
    "EPS",
    "leq",
    "geq",
    "lt",
    "close",
    "tol_floor",
    "Task",
    "TaskSet",
    "Machine",
    "Platform",
]

#: Relative tolerance used in every feasibility comparison in the library.
#: Schedulability conditions are closed inequalities (``<=``); floating
#: point noise must not flip a boundary instance, so all comparisons go
#: through :func:`leq` / :func:`geq`.
EPS: float = 1e-9


def leq(a: float, b: float, *, eps: float = EPS) -> bool:
    """Tolerant ``a <= b`` (relative to magnitude, absolute near zero)."""
    # the tolerance helper itself is the one place a bare <= is the point
    return a <= b + eps * max(1.0, abs(a), abs(b))  # repro: noqa[REP001]


def geq(a: float, b: float, *, eps: float = EPS) -> bool:
    """Tolerant ``a >= b``."""
    return leq(b, a, eps=eps)


def lt(a: float, b: float, *, eps: float = EPS) -> bool:
    """Tolerant strict ``a < b`` — the negation of :func:`geq`.

    True only when ``a`` is below ``b`` by more than the scale-aware
    tolerance, so a boundary pair (``a`` within noise of ``b``) counts as
    *not* less.  Use this for open-interval gates (e.g. "no job of the
    task fits in an interval shorter than its deadline") where the closed
    side must win at the boundary.
    """
    return not leq(b, a, eps=eps)


def close(a: float, b: float, *, eps: float = EPS) -> bool:
    """Tolerant equality."""
    return leq(a, b, eps=eps) and leq(b, a, eps=eps)


def tol_floor(x: float, *, eps: float = EPS) -> float:
    """``floor`` with scale-aware snap-up at integer boundaries.

    ``math.floor(q + EPS)`` (the pre-PR-8 idiom) stops rescuing exact
    integers once ``|q|`` is large enough that the division error
    exceeds the absolute constant; scaling the nudge by
    ``max(1, |x|)`` keeps the rescue working at every magnitude while
    still never rounding a genuinely interior value up.
    """
    return math.floor(x + eps * max(1.0, abs(x)))


@dataclass(frozen=True, slots=True)
class Task:
    """A sporadic task.

    The paper's model is *implicit-deadline* (each job is due one period
    after release) — that is the default here and what the four theorem
    tests require.  An explicit ``deadline`` different from the period is
    supported for the constrained/arbitrary-deadline extensions
    (:mod:`repro.core.dbf`) and the simulator.

    Parameters
    ----------
    wcet:
        Worst-case execution requirement ``c_i`` of each job, expressed as
        work on a unit-speed machine.  Must be positive.
    period:
        Minimum inter-release separation ``p_i``.  Must be positive.
    name:
        Optional human-readable label.
    deadline:
        Relative deadline; ``None`` (default) means implicit (= period).
    """

    wcet: float
    period: float
    name: str = ""
    deadline: float = None  # type: ignore[assignment]  # normalized below

    def __post_init__(self) -> None:
        if not (self.wcet > 0 and math.isfinite(self.wcet)):
            raise ValueError(f"wcet must be positive and finite, got {self.wcet}")
        if not (self.period > 0 and math.isfinite(self.period)):
            raise ValueError(f"period must be positive and finite, got {self.period}")
        if self.deadline is None:
            object.__setattr__(self, "deadline", self.period)
        elif not (self.deadline > 0 and math.isfinite(self.deadline)):
            raise ValueError(
                f"deadline must be positive and finite, got {self.deadline}"
            )

    @property
    def utilization(self) -> float:
        """``w_i = c_i / p_i`` — demand as a fraction of a unit-speed machine."""
        return self.wcet / self.period

    @property
    def density(self) -> float:
        """``c_i / min(d_i, p_i)`` — the constrained-deadline analogue of
        utilization (equals it for implicit deadlines)."""
        return self.wcet / min(self.deadline, self.period)

    @property
    def is_implicit(self) -> bool:
        """Does the deadline equal the period (the paper's model)?"""
        # exact equality is intentional: both fields come from the same
        # construction (from_utilization copies period into deadline), so
        # this is a structural predicate, not an arithmetic comparison
        return self.deadline == self.period  # repro: noqa[REP001]

    @classmethod
    def from_utilization(
        cls, utilization: float, period: float, name: str = ""
    ) -> "Task":
        """Build an implicit-deadline task with the given utilization."""
        if not (utilization > 0 and math.isfinite(utilization)):
            raise ValueError(f"utilization must be positive, got {utilization}")
        return cls(wcet=utilization * period, period=period, name=name)

    def scaled(self, factor: float) -> "Task":
        """Return a copy whose wcet (hence utilization) is scaled by ``factor``."""
        return Task(
            wcet=self.wcet * factor,
            period=self.period,
            name=self.name,
            deadline=self.deadline,
        )


class TaskSet(Sequence[Task]):
    """An immutable ordered collection of :class:`Task`.

    Indexing is positional and stable: all partitioning and LP code refers
    to tasks by their index in the task set.
    """

    __slots__ = ("_tasks",)

    def __init__(self, tasks: Iterable[Task]):
        self._tasks: tuple[Task, ...] = tuple(tasks)
        for t in self._tasks:
            if not isinstance(t, Task):
                raise TypeError(f"TaskSet items must be Task, got {type(t)!r}")

    # -- Sequence protocol -------------------------------------------------
    def __len__(self) -> int:
        return len(self._tasks)

    def __iter__(self) -> Iterator[Task]:
        return iter(self._tasks)

    def __getitem__(self, index):  # type: ignore[override]
        if isinstance(index, slice):
            return TaskSet(self._tasks[index])
        return self._tasks[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TaskSet):
            return NotImplemented
        return self._tasks == other._tasks

    def __hash__(self) -> int:
        return hash(self._tasks)

    def __repr__(self) -> str:
        return (
            f"TaskSet(n={len(self)}, total_utilization="
            f"{self.total_utilization:.4f})"
        )

    # -- Aggregates ---------------------------------------------------------
    @property
    def tasks(self) -> tuple[Task, ...]:
        return self._tasks

    @property
    def total_utilization(self) -> float:
        """``sum_i w_i``."""
        return math.fsum(t.utilization for t in self._tasks)

    @property
    def max_utilization(self) -> float:
        """``max_i w_i`` (0 for an empty set)."""
        return max((t.utilization for t in self._tasks), default=0.0)

    @property
    def utilizations(self) -> tuple[float, ...]:
        return tuple(t.utilization for t in self._tasks)

    @property
    def total_density(self) -> float:
        """``sum_i c_i / min(d_i, p_i)`` (equals total utilization when
        all deadlines are implicit)."""
        return math.fsum(t.density for t in self._tasks)

    @property
    def is_implicit(self) -> bool:
        """Do all tasks have implicit deadlines (the paper's model)?"""
        return all(t.is_implicit for t in self._tasks)

    @property
    def periods(self) -> tuple[float, ...]:
        return tuple(t.period for t in self._tasks)

    # -- Transformations ----------------------------------------------------
    def sorted_by_utilization(self, *, descending: bool = True) -> "TaskSet":
        """Tasks reordered by utilization (paper's algorithm sorts descending).

        Ties are broken by original position, making the order deterministic.
        """
        order = self.order_by_utilization(descending=descending)
        return TaskSet(self._tasks[i] for i in order)

    def order_by_utilization(self, *, descending: bool = True) -> list[int]:
        """Indices of tasks sorted by utilization, stable on ties."""
        idx = list(range(len(self._tasks)))
        idx.sort(key=lambda i: self._tasks[i].utilization, reverse=descending)
        return idx

    def scaled(self, factor: float) -> "TaskSet":
        """Scale every task's wcet by ``factor``."""
        return TaskSet(t.scaled(factor) for t in self._tasks)

    def subset(self, indices: Iterable[int]) -> "TaskSet":
        """Tasks at the given positions, in the given order."""
        return TaskSet(self._tasks[i] for i in indices)

    def without(self, index: int) -> "TaskSet":
        """Copy with the task at ``index`` removed."""
        n = len(self._tasks)
        if not -n <= index < n:
            raise IndexError(index)
        index %= n
        return TaskSet(self._tasks[:index] + self._tasks[index + 1 :])

    def extended(self, extra: Iterable[Task]) -> "TaskSet":
        """Copy with ``extra`` tasks appended."""
        return TaskSet(self._tasks + tuple(extra))


@dataclass(frozen=True, slots=True)
class Machine:
    """A single machine of the related-machines platform."""

    speed: float
    name: str = ""

    def __post_init__(self) -> None:
        if not (self.speed > 0 and math.isfinite(self.speed)):
            raise ValueError(f"speed must be positive and finite, got {self.speed}")


class Platform(Sequence[Machine]):
    """An ordered set of related machines.

    Machines are stored **sorted by non-decreasing speed** — the order the
    paper's first-fit algorithm consumes them in (§III step 2).  Indexing
    is positional within that sorted order.
    """

    __slots__ = ("_machines",)

    def __init__(self, machines: Iterable[Machine]):
        ms = tuple(machines)
        for m in ms:
            if not isinstance(m, Machine):
                raise TypeError(f"Platform items must be Machine, got {type(m)!r}")
        if len(ms) == 0:
            raise ValueError("Platform needs at least one machine")
        self._machines: tuple[Machine, ...] = tuple(
            sorted(ms, key=lambda m: m.speed)
        )

    # -- Sequence protocol -------------------------------------------------
    def __len__(self) -> int:
        return len(self._machines)

    def __iter__(self) -> Iterator[Machine]:
        return iter(self._machines)

    def __getitem__(self, index):  # type: ignore[override]
        if isinstance(index, slice):
            return Platform(self._machines[index])
        return self._machines[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Platform):
            return NotImplemented
        return self._machines == other._machines

    def __hash__(self) -> int:
        return hash(self._machines)

    def __repr__(self) -> str:
        return f"Platform(m={len(self)}, speeds={[round(s, 4) for s in self.speeds]})"

    # -- Aggregates ---------------------------------------------------------
    @property
    def machines(self) -> tuple[Machine, ...]:
        return self._machines

    @property
    def speeds(self) -> tuple[float, ...]:
        """Machine speeds in non-decreasing order."""
        return tuple(m.speed for m in self._machines)

    @property
    def total_speed(self) -> float:
        """Aggregate capacity ``sum_j s_j``."""
        return math.fsum(m.speed for m in self._machines)

    @property
    def fastest_speed(self) -> float:
        return self._machines[-1].speed

    @property
    def slowest_speed(self) -> float:
        return self._machines[0].speed

    @property
    def heterogeneity_ratio(self) -> float:
        """``s_max / s_min`` — 1.0 for identical machines."""
        return self.fastest_speed / self.slowest_speed

    # -- Constructors ---------------------------------------------------------
    @classmethod
    def identical(cls, m: int, speed: float = 1.0) -> "Platform":
        """``m`` machines of equal speed."""
        if m < 1:
            raise ValueError("need at least one machine")
        return cls(Machine(speed, name=f"m{j}") for j in range(m))

    @classmethod
    def from_speeds(cls, speeds: Iterable[float]) -> "Platform":
        """Platform with the given speeds (any order; stored sorted)."""
        return cls(Machine(s, name=f"m{j}") for j, s in enumerate(speeds))

    def scaled(self, alpha: float) -> "Platform":
        """Platform with every speed multiplied by ``alpha`` (speed augmentation)."""
        if alpha <= 0:
            raise ValueError("alpha must be positive")
        return Platform(
            Machine(m.speed * alpha, name=m.name) for m in self._machines
        )
