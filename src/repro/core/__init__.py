"""The paper's primary contribution: models, tests, partitioner, analysis.

See :mod:`repro.core.feasibility` for the four headline theorem tests.
"""

from .bounds import (
    ADMISSION_TESTS,
    AdmissionTest,
    EDFUtilizationTest,
    MachineState,
    RMSHyperbolicTest,
    RMSLiuLaylandTest,
    RMSResponseTimeTest,
    admission_test,
    edf_utilization_feasible,
    liu_layland_bound,
    rms_hyperbolic_feasible,
    rms_liu_layland_feasible,
    rms_rta_feasible,
)
from .certificates import (
    FailureCertificate,
    MachineClasses,
    classify_machines,
    corollary_iv3_holds,
    corollary_v3_holds,
    edf_load_bounds_hold,
    partitioned_infeasibility_certificate,
    rms_load_bounds_hold,
)
from .constants import (
    ALPHA_EDF_LP,
    ALPHA_EDF_PARTITIONED,
    ALPHA_EDF_PRIOR,
    ALPHA_RMS_LP,
    ALPHA_RMS_PARTITIONED,
    ALPHA_RMS_PRIOR,
    EDF_LP_CONSTANTS,
    RMS_LP_CONSTANTS,
    ProofConstants,
    alpha_frontier,
    best_constants_for_alpha,
    conditions,
    constants_valid,
    edf_conditions,
    minimal_alpha,
    rms_conditions,
)
from .dbf import (
    EDFDemandBoundTest,
    dbf,
    dbf_taskset,
    demand_bound_horizon,
    demand_points,
    edf_demand_feasible,
    qpa_edf_feasible,
)
from .dbf_approx import (
    EDFApproxDemandTest,
    approx_dbf,
    edf_approx_demand_feasible,
)
from .feasibility import (
    FeasibilityReport,
    edf_test_vs_any,
    edf_test_vs_partitioned,
    feasibility_test,
    rms_test_vs_any,
    rms_test_vs_partitioned,
    theorem_alpha,
)
from .lp import (
    LPSolution,
    check_lp_solution,
    lp_feasible,
    lp_solve,
    lp_stress,
    verify_lemma_ii1,
)
from .model import EPS, Machine, Platform, Task, TaskSet
from .partition import (
    PartitionResult,
    first_fit_partition,
    partition,
    verify_partition,
)
from .rta import rms_response_times, rms_rta_schedulable

__all__ = [name for name in dir() if not name.startswith("_")]
