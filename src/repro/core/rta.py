"""Exact response-time analysis (RTA) for rate-monotonic scheduling.

RTA (Joseph & Pandya / Audsley et al.) is the exact schedulability test
for preemptive fixed-priority scheduling of synchronous implicit-deadline
periodic tasks — which is the critical instant, i.e. worst case, for the
sporadic tasks of the paper.  On a machine of speed ``s`` a job of task
``tau_i`` takes ``c_i / s`` time, so the classic recurrence becomes::

    R^{(0)} = c_i / s
    R^{(k+1)} = c_i / s + sum_{j in hp(i)} ceil(R^{(k)} / p_j) * c_j / s

iterated to a fixed point; ``tau_i`` meets its deadline iff the fixed
point exists and is ``<= p_i``.

The paper itself only uses the Liu–Layland *bound* (Theorem II.3); RTA is
the ground-truth single-machine RMS oracle our exact partitioned-RMS
adversary and the pessimism experiments (E3) are built on.
"""

from __future__ import annotations

import math
from typing import Sequence

from .model import EPS, Task, leq

__all__ = [
    "rms_priority_order",
    "dm_priority_order",
    "fp_response_times",
    "rms_response_times",
    "rms_rta_schedulable",
    "dm_rta_schedulable",
]

#: Iteration cap: RTA converges or diverges past the deadline long before
#: this for any sane instance; the cap guards against pathological floats.
_MAX_ITERATIONS = 100_000


def rms_priority_order(tasks: Sequence[Task]) -> list[int]:
    """Indices of ``tasks`` from highest to lowest RM priority.

    Rate-monotonic priority: shorter period = higher priority; ties broken
    by position (earlier task wins), which is deterministic and matches
    the simulator's tie-breaking.
    """
    idx = list(range(len(tasks)))
    idx.sort(key=lambda i: (tasks[i].period, i))
    return idx


def dm_priority_order(tasks: Sequence[Task]) -> list[int]:
    """Indices of ``tasks`` from highest to lowest DM priority.

    Deadline-monotonic priority: shorter relative deadline = higher
    priority; ties broken by position.  DM is the optimal fixed-priority
    assignment for constrained deadlines (Leung & Whitehead), and it
    coincides with RM on implicit-deadline sets.
    """
    idx = list(range(len(tasks)))
    idx.sort(key=lambda i: (tasks[i].deadline, i))
    return idx


def _tolerant_ceil(x: float) -> float:
    """``ceil`` that treats values a hair above an integer as that integer.

    Without this, ``ceil(R / p)`` can jump a whole period on floating-point
    noise and flip a boundary-schedulable instance.
    """
    f = math.floor(x)
    # the tolerance primitive for ceil cannot itself route through leq()
    if x - f <= EPS * max(1.0, abs(x)):  # repro: noqa[REP001]
        return f
    return f + 1.0


def fp_response_times(
    tasks: Sequence[Task],
    speed: float = 1.0,
    *,
    order: Sequence[int] | None = None,
) -> list[float] | None:
    """Worst-case response times under fixed priorities on a
    speed-``speed`` machine.

    ``order`` lists task indices from highest to lowest priority
    (default: rate-monotonic).  Returns a list aligned with ``tasks``
    (original order) of worst-case response times if every task meets
    its deadline, else ``None``.  The analysis is exact whenever every
    deadline is at most its period (checked against ``min(d, p)``).

    Raises
    ------
    ValueError
        if ``speed`` is not positive.
    """
    if speed <= 0:
        raise ValueError("speed must be positive")
    n = len(tasks)
    if n == 0:
        return []
    if order is None:
        order = rms_priority_order(tasks)
    responses: list[float] = [0.0] * n
    higher: list[Task] = []
    for i in order:
        task = tasks[i]
        # constrained deadlines are checked against d_i (RTA is exact for
        # RM priorities whenever d_i <= p_i)
        due = min(task.deadline, task.period)
        own = task.wcet / speed
        if not leq(own, due):
            return None
        r = own
        for _ in range(_MAX_ITERATIONS):
            interference = own + math.fsum(
                _tolerant_ceil(r / h.period) * (h.wcet / speed) for h in higher
            )
            if leq(interference, r):
                r = interference
                break
            r = interference
            if not leq(r, due):
                return None
        else:  # pragma: no cover - iteration cap
            return None
        if not leq(r, due):
            return None
        responses[i] = r
        higher.append(task)
    return responses


def rms_response_times(
    tasks: Sequence[Task], speed: float = 1.0
) -> list[float] | None:
    """Worst-case response times under RMS (see :func:`fp_response_times`)."""
    return fp_response_times(tasks, speed)


def rms_rta_schedulable(tasks: Sequence[Task], speed: float = 1.0) -> bool:
    """Exact RMS schedulability on a speed-``speed`` machine."""
    return rms_response_times(tasks, speed) is not None


def dm_rta_schedulable(tasks: Sequence[Task], speed: float = 1.0) -> bool:
    """Exact DM schedulability on a speed-``speed`` machine.

    Exact for constrained deadlines (``d <= p``), where DM is the
    optimal fixed-priority order; on implicit-deadline sets it equals
    :func:`rms_rta_schedulable`.
    """
    return (
        fp_response_times(tasks, speed, order=dm_priority_order(tasks))
        is not None
    )
