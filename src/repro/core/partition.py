"""The paper's partitioning algorithm (§III) and its heuristic family.

The canonical algorithm:

1. sort tasks by non-increasing utilization,
2. sort machines by non-decreasing speed,
3. first-fit: assign each task to the first machine whose single-machine
   admission test (EDF utilization or RMS Liu–Layland, with speed
   augmentation ``alpha``) still passes;
4. declare failure on the first task no machine admits.

Runs in ``O(n log n + n m)`` — each task probes machines in order and the
admission tests keep O(1) state (``rms-rta`` is the deliberate exception).

For the ablation study (experiment E8) the task order, machine order and
fit rule are all pluggable; :func:`first_fit_partition` pins the paper's
choices.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal

from .bounds import AdmissionTest, MachineState, admission_test
from .model import Platform, Task, TaskSet

__all__ = [
    "TaskOrder",
    "MachineOrder",
    "FitRule",
    "PartitionResult",
    "partition",
    "first_fit_partition",
    "verify_partition",
]

TaskOrder = Literal["util-desc", "util-asc", "deadline-asc", "input"]
MachineOrder = Literal["speed-asc", "speed-desc"]
FitRule = Literal["first", "best", "worst", "next"]


@dataclass(frozen=True)
class PartitionResult:
    """Outcome of a partitioning run.

    All task indices refer to positions in the *original* task set; all
    machine indices refer to positions in the platform's canonical
    (speed-ascending) order.
    """

    success: bool
    #: per original task index: machine index, or None if never placed
    assignment: tuple[int | None, ...]
    #: per machine: original task indices in assignment order
    machine_tasks: tuple[tuple[int, ...], ...]
    #: per machine: total assigned utilization
    loads: tuple[float, ...]
    #: original index of the first task that could not be placed (None on success)
    failed_task: int | None
    #: speed augmentation the partitioner ran with
    alpha: float
    #: admission test name ("edf", "rms-ll", ...)
    test_name: str
    #: the order (original indices) tasks were processed in
    order: tuple[int, ...]

    @property
    def n_assigned(self) -> int:
        return sum(1 for a in self.assignment if a is not None)

    def tasks_on(self, machine_index: int) -> tuple[int, ...]:
        """Original task indices assigned to ``machine_index``."""
        return self.machine_tasks[machine_index]


def _task_order(taskset: TaskSet, rule: TaskOrder) -> list[int]:
    if rule == "util-desc":
        return taskset.order_by_utilization(descending=True)
    if rule == "util-asc":
        return taskset.order_by_utilization(descending=False)
    if rule == "deadline-asc":
        # deadline-monotonic processing order (Han–Zhao / Chen first-fit);
        # sort() is stable, so ties keep input position
        idx = list(range(len(taskset)))
        idx.sort(key=lambda i: taskset[i].deadline)
        return idx
    if rule == "input":
        return list(range(len(taskset)))
    raise ValueError(f"unknown task order {rule!r}")


def _machine_order(platform: Platform, rule: MachineOrder) -> list[int]:
    # Platform stores machines speed-ascending already.
    if rule == "speed-asc":
        return list(range(len(platform)))
    if rule == "speed-desc":
        return list(range(len(platform) - 1, -1, -1))
    raise ValueError(f"unknown machine order {rule!r}")


def partition(
    taskset: TaskSet,
    platform: Platform,
    test: AdmissionTest | str = "edf",
    *,
    alpha: float = 1.0,
    task_order: TaskOrder = "util-desc",
    machine_order: MachineOrder = "speed-asc",
    fit: FitRule = "first",
) -> PartitionResult:
    """Partition ``taskset`` onto ``platform`` with a pluggable strategy.

    Parameters
    ----------
    test:
        Single-machine admission test (name or instance).
    alpha:
        Speed augmentation: each machine of speed ``s`` is treated as
        having speed ``alpha * s`` (§II).
    task_order, machine_order, fit:
        Strategy knobs; defaults are the paper's algorithm.

    Returns
    -------
    PartitionResult
        ``success`` is False iff some task could not be placed; the
        partitioner stops at the first failure (the paper's behaviour) and
        reports it in ``failed_task``.
    """
    if alpha <= 0:
        raise ValueError("alpha must be positive")
    if isinstance(test, str):
        test = admission_test(test)

    t_order = _task_order(taskset, task_order)
    m_order = _machine_order(platform, machine_order)
    m = len(platform)
    states: list[MachineState] = [
        test.open(platform[j].speed * alpha) for j in range(m)
    ]
    assignment: list[int | None] = [None] * len(taskset)
    machine_tasks: list[list[int]] = [[] for _ in range(m)]
    failed: int | None = None
    next_pointer = 0  # for fit == "next"

    for ti in t_order:
        task = taskset[ti]
        chosen: int | None = None
        if fit == "first":
            for j in m_order:
                if states[j].admits(task):
                    chosen = j
                    break
        elif fit == "next":
            for off in range(m):
                j = m_order[(next_pointer + off) % m]
                if states[j].admits(task):
                    chosen = j
                    next_pointer = (next_pointer + off) % m
                    break
        elif fit in ("best", "worst"):
            best_fill = None
            for j in m_order:
                st = states[j]
                if not st.admits(task):
                    continue
                fill = st.load / st.speed
                if (
                    best_fill is None
                    or (fit == "best" and fill > best_fill)
                    or (fit == "worst" and fill < best_fill)
                ):
                    best_fill = fill
                    chosen = j
        else:
            raise ValueError(f"unknown fit rule {fit!r}")

        if chosen is None:
            failed = ti
            break
        states[chosen].add(task)
        assignment[ti] = chosen
        machine_tasks[chosen].append(ti)

    return PartitionResult(
        success=failed is None,
        assignment=tuple(assignment),
        machine_tasks=tuple(tuple(ts) for ts in machine_tasks),
        loads=tuple(st.load for st in states),
        failed_task=failed,
        alpha=alpha,
        test_name=test.name,
        order=tuple(t_order),
    )


def first_fit_partition(
    taskset: TaskSet,
    platform: Platform,
    test: AdmissionTest | str = "edf",
    *,
    alpha: float = 1.0,
) -> PartitionResult:
    """The paper's algorithm: tasks by non-increasing utilization, machines
    by non-decreasing speed, first-fit (§III)."""
    return partition(
        taskset,
        platform,
        test,
        alpha=alpha,
        task_order="util-desc",
        machine_order="speed-asc",
        fit="first",
    )


def verify_partition(
    result: PartitionResult,
    taskset: TaskSet,
    platform: Platform,
    test: AdmissionTest | str | None = None,
) -> bool:
    """Re-check a successful partition with one-shot set tests.

    Returns True iff every machine's assigned set passes the admission
    test at the result's speed augmentation and every task is assigned
    exactly once.  Used by the test suite as an independent oracle on the
    incremental states.
    """
    if not result.success:
        return False
    if isinstance(test, str):
        test = admission_test(test)
    if test is None:
        test = admission_test(result.test_name)
    seen: set[int] = set()
    for j, idxs in enumerate(result.machine_tasks):
        tasks = [taskset[i] for i in idxs]
        if not test.feasible(tasks, platform[j].speed * result.alpha):
            return False
        seen.update(idxs)
    if seen != set(range(len(taskset))):
        return False
    for i, a in enumerate(result.assignment):
        if a is None or i not in result.machine_tasks[a]:
            return False
    return True
