"""The paper's feasibility linear program (§II) and Lemma II.1.

Any schedule — partitioned or fully migratory — induces a feasible
solution of the LP below, so LP infeasibility certifies that *no*
scheduler can meet all deadlines.  The paper's 2.98/3.34 analyses compare
against exactly this LP, which makes it our "non-partitioned adversary"
oracle.  Variables ``u[i, j]`` give the utilization of task ``i`` served
by machine ``j``::

    (1)  for all i:  sum_j u[i, j]          == w_i      (task fully served)
    (2)  for all i:  sum_j u[i, j] / s_j    <= 1        (no self-parallelism)
    (3)  for all j:  sum_i u[i, j] / s_j    <= 1        (machine capacity)
    (4)  u >= 0

Solved with scipy's HiGHS.  Besides the yes/no oracle we expose the
*stress* ``beta*``: the minimum uniform relaxation of constraints (2)+(3)
that admits a solution — ``beta* <= 1`` iff the LP is feasible, and the
value is a useful continuous measure of how overloaded an instance is
(equivalently, ``1/beta*`` is the largest factor by which the platform
could be slowed while staying LP-feasible).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.optimize import linprog
from scipy.sparse import coo_matrix

from .model import Platform, TaskSet

__all__ = [
    "LPSolution",
    "lp_feasible",
    "lp_stress",
    "lp_solve",
    "check_lp_solution",
    "verify_lemma_ii1",
    "tol_leq",
    "tol_geq",
]

#: Feasibility slack granted to the solver's answer.  HiGHS enforces
#: constraints to ~1e-9; we accept 1e-7 to be safe across platforms.
LP_TOL: float = 1e-7


def tol_leq(a, b, *, tol: float = LP_TOL):
    """Tolerant ``a <= b`` — *the* tolerance convention for LP-side checks.

    Identical shape to :func:`repro.core.model.leq` (relative to the
    larger magnitude, absolute near zero) but at the LP's looser ``tol``;
    works elementwise on numpy arrays.  Every comparison in
    :func:`check_lp_solution` and :func:`verify_lemma_ii1` goes through
    this one helper so the two verifiers can never disagree about what
    "on the boundary" means.
    """
    scale = np.maximum(1.0, np.maximum(np.abs(a), np.abs(b)))
    return a <= b + tol * scale


def tol_geq(a, b, *, tol: float = LP_TOL):
    """Tolerant ``a >= b`` (see :func:`tol_leq`)."""
    return tol_leq(b, a, tol=tol)


@dataclass(frozen=True)
class LPSolution:
    """A solved LP instance."""

    #: n x m utilization-assignment matrix (or None when infeasible)
    u: np.ndarray | None
    #: minimum uniform relaxation beta* of constraints (2)+(3)
    stress: float

    @property
    def feasible(self) -> bool:
        return bool(tol_leq(self.stress, 1.0))


def _necessary_conditions(taskset: TaskSet, platform: Platform) -> bool:
    """Cheap necessary conditions: every task fits the fastest machine
    (constraint 2 summed against s_m) and total utilization fits total
    speed (constraints 1+3 summed)."""
    s_max = platform.fastest_speed
    if any(t.utilization > s_max * (1.0 + LP_TOL) for t in taskset):
        return False
    if taskset.total_utilization > platform.total_speed * (1.0 + LP_TOL):
        return False
    return True


def _build_stress_lp(taskset: TaskSet, platform: Platform):
    """Build ``min beta`` subject to (1), (2)<=beta, (3)<=beta, u>=0.

    Variables: u flattened row-major (i*m + j), then beta last.
    """
    n = len(taskset)
    m = len(platform)
    w = np.array(taskset.utilizations)
    s = np.array(platform.speeds)
    nv = n * m + 1

    # Equality (1): one row per task.
    eq_rows = np.repeat(np.arange(n), m)
    eq_cols = np.arange(n * m)
    eq_vals = np.ones(n * m)
    a_eq = coo_matrix((eq_vals, (eq_rows, eq_cols)), shape=(n, nv)).tocsr()
    b_eq = w

    # Inequalities: n rows of (2) then m rows of (3); each has -beta.
    rows = []
    cols = []
    vals = []
    inv_s = 1.0 / s
    for i in range(n):
        for j in range(m):
            rows.append(i)
            cols.append(i * m + j)
            vals.append(inv_s[j])
        rows.append(i)
        cols.append(n * m)
        vals.append(-1.0)
    for j in range(m):
        r = n + j
        for i in range(n):
            rows.append(r)
            cols.append(i * m + j)
            vals.append(inv_s[j])
        rows.append(r)
        cols.append(n * m)
        vals.append(-1.0)
    a_ub = coo_matrix((vals, (rows, cols)), shape=(n + m, nv)).tocsr()
    b_ub = np.zeros(n + m)

    c = np.zeros(nv)
    c[-1] = 1.0
    return c, a_ub, b_ub, a_eq, b_eq


def lp_solve(taskset: TaskSet, platform: Platform) -> LPSolution:
    """Solve the stress LP; always succeeds (beta can absorb any overload).

    Returns the assignment matrix at the optimum and ``beta*``.
    """
    n = len(taskset)
    if n == 0:
        m = len(platform)
        return LPSolution(u=np.zeros((0, m)), stress=0.0)
    m = len(platform)
    c, a_ub, b_ub, a_eq, b_eq = _build_stress_lp(taskset, platform)
    res = linprog(
        c,
        A_ub=a_ub,
        b_ub=b_ub,
        A_eq=a_eq,
        b_eq=b_eq,
        bounds=[(0, None)] * (n * m + 1),
        method="highs",
    )
    if not res.success:  # pragma: no cover - stress LP is always feasible
        raise RuntimeError(f"LP solver failed unexpectedly: {res.message}")
    u = np.asarray(res.x[: n * m]).reshape(n, m)
    return LPSolution(u=u, stress=float(res.x[-1]))


def lp_stress(taskset: TaskSet, platform: Platform) -> float:
    """Minimum uniform relaxation ``beta*`` (see module docstring)."""
    return lp_solve(taskset, platform).stress


def lp_feasible(taskset: TaskSet, platform: Platform) -> bool:
    """Is the paper's LP (constraints 1-4) feasible for this instance?

    Feasible is a *necessary* condition for any scheduler (even migratory)
    to meet all deadlines; infeasible certifies the instance hopeless.
    """
    if not _necessary_conditions(taskset, platform):
        return False
    return lp_solve(taskset, platform).feasible


def check_lp_solution(
    u: np.ndarray,
    taskset: TaskSet,
    platform: Platform,
    *,
    tol: float = LP_TOL,
) -> bool:
    """Independently verify a candidate assignment matrix against (1)-(4)."""
    n, m = len(taskset), len(platform)
    u = np.asarray(u, dtype=float)
    if u.shape != (n, m):
        return False
    if not np.all(tol_geq(u, 0.0, tol=tol)):
        return False
    w = np.array(taskset.utilizations)
    s = np.array(platform.speeds)
    served = u.sum(axis=1)
    if not np.all(tol_leq(served, w, tol=tol) & tol_geq(served, w, tol=tol)):
        return False
    if not np.all(tol_leq((u / s).sum(axis=1), 1.0, tol=tol)):
        return False
    if not np.all(tol_leq((u / s).sum(axis=0), 1.0, tol=tol)):
        return False
    return True


def verify_lemma_ii1(
    u: np.ndarray,
    taskset: TaskSet,
    platform: Platform,
    alpha: float,
    *,
    tol: float = LP_TOL,
) -> bool:
    """Check Lemma II.1 on a feasible LP solution.

    The lemma (from [2], as *used* in §IV/§V — the statement in the text
    garbles the precondition): fix ``alpha > 1`` and a feasible solution
    ``u``.  For every task ``i`` and every machine count ``k`` such that
    the first ``k`` machines are all too slow for the task even when
    augmented (``w_i >= alpha * s_j`` for all ``j <= k``, i.e. ``w_i >=
    alpha * s_k`` under the speed-ascending order):

        ``w_i <= alpha/(alpha-1) * sum_{j > k} u[i, j]``

    Derivation: LP constraint (2) gives ``sum_j u[i,j]/s_j <= 1``; on the
    slow prefix ``u[i,j]/s_j >= alpha*u[i,j]/w_i``, so the prefix carries
    at most ``w_i/alpha`` of the task, leaving at least ``w_i*(1-1/alpha)``
    on the suffix.  ``k = 0`` is the trivial case (suffix = everything).

    All boundary comparisons use :func:`tol_leq`/:func:`tol_geq` — the
    same convention as :func:`check_lp_solution` — so a ``w_i ~= alpha *
    s_k`` instance that one verifier treats as "on the prefix" cannot be
    treated as "off it" by the other.
    """
    if alpha <= 1.0:
        raise ValueError("Lemma II.1 needs alpha > 1")
    n, m = len(taskset), len(platform)
    u = np.asarray(u, dtype=float)
    s = platform.speeds
    factor = alpha / (alpha - 1.0)
    for i in range(n):
        w_i = taskset[i].utilization
        # suffixes[k] = sum_{j >= k} u[i, j]
        suffixes = [0.0] * (m + 1)
        for j in range(m - 1, -1, -1):
            suffixes[j] = suffixes[j + 1] + u[i, j]
        for k in range(0, m + 1):
            if k > 0 and not tol_geq(w_i, alpha * s[k - 1], tol=tol):
                break  # machines only get faster: no further k applies
            if not tol_leq(w_i, factor * suffixes[k], tol=tol):
                return False
    return True
