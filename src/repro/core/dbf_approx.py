"""Approximate demand bound functions — the polynomial-time EDF test.

Exact constrained-deadline EDF tests (:mod:`repro.core.dbf`) are
pseudo-polynomial.  The classic fix (Albers & Slomka; the approach behind
the paper's reference [7], Chen & Chakraborty's resource-augmentation
bounds for approximate demand bound functions) keeps each task's dbf
exact for its first ``k`` steps and continues with the utilization-slope
linear upper bound::

    dbf*_k(t) = dbf(t)                        for t <  d + (k-1) p
    dbf*_k(t) = k c + (t - d - (k-1) p) * u   for t >= d + (k-1) p

Properties (all property-tested):

* ``dbf <= dbf*_k`` pointwise, with equality at step points — so
  acceptance (``sum_i dbf*_k <= speed * t`` everywhere) implies exact
  feasibility (**sound**);
* ``dbf*_k`` has at most ``k`` breakpoints per task, and the slack
  function ``speed*t - sum dbf*`` is piecewise linear, so checking the
  O(nk) breakpoints decides the test in polynomial time;
* rejection over-refuses by at most a ``(1 + 1/k)`` speed factor
  ([7]'s augmentation bound): if the test rejects at speed ``s``, the
  set is genuinely infeasible at speed ``s / (1 + 1/k)``;
* ``k -> inf`` converges to the exact test.
"""

from __future__ import annotations

import math
from typing import Sequence

from .bounds import ADMISSION_TESTS, AdmissionTest, MachineState, _NeumaierSum
from .dbf import dbf
from .model import EPS, Task, leq, lt

__all__ = [
    "approx_dbf",
    "edf_approx_demand_feasible",
    "EDFApproxDemandTest",
]


def approx_dbf(task: Task, t: float, k: int) -> float:
    """The k-step approximate demand bound ``dbf*_k`` of one task."""
    if k < 1:
        raise ValueError("k must be at least 1")
    if lt(t, task.deadline):
        return 0.0
    linear_from = task.deadline + (k - 1) * task.period
    if lt(t, linear_from):
        return dbf(task, t)
    return k * task.wcet + (t - linear_from) * task.utilization


def _breakpoints(tasks: Sequence[Task], k: int) -> list[float]:
    """All points where some task's ``dbf*_k`` changes slope or jumps."""
    points: set[float] = set()
    for task in tasks:
        for j in range(k):
            points.add(task.deadline + j * task.period)
    return sorted(points)


def edf_approx_demand_feasible(
    tasks: Sequence[Task], speed: float = 1.0, *, k: int = 4
) -> bool:
    """Polynomial-time sufficient EDF test via k-step approximate dbfs.

    Accepts only genuinely feasible sets; may reject feasible ones, by at
    most a ``(1+1/k)`` speed factor.  ``k=1`` degenerates to the density
    test; large ``k`` approaches the exact processor-demand criterion.
    """
    if speed <= 0:
        raise ValueError("speed must be positive")
    if not tasks:
        return True
    total_u = math.fsum(t.utilization for t in tasks)
    if total_u > speed * (1.0 + EPS):
        return False
    # The slack speed*t - sum dbf* is piecewise linear between
    # breakpoints, with non-negative slope beyond the last one (U <= s),
    # so violations are witnessed at breakpoints — including the jump
    # discontinuities of the exact region, which occur *at* step points.
    for t in _breakpoints(tasks, k):
        demand = math.fsum(approx_dbf(task, t, k) for task in tasks)
        if not leq(demand, speed * t):
            return False
    return True


class _ApproxState(MachineState):
    __slots__ = ("_tasks", "_load", "_k")

    def __init__(self, speed: float, k: int):
        super().__init__(speed)
        self._tasks: list[Task] = []
        self._load = _NeumaierSum()
        self._k = k

    def admits(self, task: Task) -> bool:
        return edf_approx_demand_feasible(
            self._tasks + [task], self.speed, k=self._k
        )

    def add(self, task: Task) -> None:
        self._tasks.append(task)
        self._load.add(task.utilization)

    @property
    def load(self) -> float:
        return self._load.total

    @property
    def count(self) -> int:
        return len(self._tasks)


class EDFApproxDemandTest(AdmissionTest):
    """Partitioner admission using the k-step approximate dbf test.

    Registered as ``edf-dbf-approx`` with the default ``k=4``;
    instantiate directly for other k.
    """

    def __init__(self, k: int = 4):
        if k < 1:
            raise ValueError("k must be at least 1")
        self.k = k
        self.name = f"edf-dbf-approx(k={k})" if k != 4 else "edf-dbf-approx"

    def open(self, speed: float) -> MachineState:
        return _ApproxState(speed, self.k)

    def feasible(self, tasks: Sequence[Task], speed: float) -> bool:
        return edf_approx_demand_feasible(tasks, speed, k=self.k)


ADMISSION_TESTS.setdefault("edf-dbf-approx", EDFApproxDemandTest())
