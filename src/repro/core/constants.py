"""The analysis constants of §IV/§V and the arithmetic behind the theorems.

The paper's non-partitioned-adversary results hinge on four free constants
``c_s, c_f, f_w, f_f`` per scheduler and three inequalities that must all
exceed 1 for the proof's contradictions to fire:

EDF (§IV, Theorem I.3, alpha = 2.98):

* *fast-case*   ``(alpha-1) * (1/2 + 1/(2 c_f) - 1/(c_s c_f)) > 1``
  (end of proof of Lemma IV.1),
* *split*       ``alpha * c_f * f_f * (1-f_w) / 2 > 1``
  (end of proof of Lemma IV.5),
* *slow-case*   ``alpha * f_w * f_im / 2 > 1`` with
  ``f_im = (1 + alpha f_f - alpha) / (alpha (1/c_s - 1))``
  (Lemma IV.7 plugged into the proof of Lemma IV.4).

RMS (§V, Theorem I.4, alpha = 3.34): the same three shapes with the EDF
half-load ``1/2`` replaced by ``sqrt(2)-1`` (Lemma V.3) and the fast-group
load ``1 - 1/c_s`` replaced by ``ln 2 - 1/c_s`` (Lemma V.2).

The partitioned-adversary results need no constants:

* Theorem I.1 (EDF):  alpha = 2       (Corollary IV.3),
* Theorem I.2 (RMS):  alpha = 1/(sqrt(2)-1) = 1 + sqrt(2) ~= 2.414
  (Lemma V.3; the theorem statement in the text says "non-partitioned"
  but abstract/intro/proof all say partitioned — we follow the proof).

This module verifies the paper's printed constants, and — because the
constants are free parameters of the proof — optimizes over them to find
the smallest alpha the technique supports (experiment E12).  The inner
optimization collapses analytically: for fixed ``alpha``, the fast-case
condition upper-bounds ``c_f``, the split condition lower-bounds ``f_f``
given ``(c_f, f_w)``, so feasibility reduces to a 2-D search over
``(c_s, f_w)`` of the slow-case slack.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Literal

import numpy as np

from .model import geq

__all__ = [
    "SQRT2",
    "LN2",
    "ALPHA_EDF_PARTITIONED",
    "ALPHA_RMS_PARTITIONED",
    "ALPHA_EDF_LP",
    "ALPHA_RMS_LP",
    "ALPHA_EDF_PRIOR",
    "ALPHA_RMS_PRIOR",
    "ProofConstants",
    "EDF_LP_CONSTANTS",
    "RMS_LP_CONSTANTS",
    "f_im",
    "edf_conditions",
    "rms_conditions",
    "conditions",
    "constants_valid",
    "slow_case_slack",
    "best_constants_for_alpha",
    "minimal_alpha",
    "alpha_frontier",
]

SQRT2 = math.sqrt(2.0)
LN2 = math.log(2.0)

#: Theorem I.1 — EDF first-fit vs a partitioned adversary.
ALPHA_EDF_PARTITIONED: float = 2.0
#: Theorem I.2 — RMS first-fit vs a partitioned adversary (= 1 + sqrt 2).
ALPHA_RMS_PARTITIONED: float = 1.0 / (SQRT2 - 1.0)
#: Theorem I.3 — EDF first-fit vs the LP (any, possibly migratory, adversary).
ALPHA_EDF_LP: float = 2.98
#: Theorem I.4 — RMS first-fit vs the LP.
ALPHA_RMS_LP: float = 3.34
#: Prior work [2] (Andersson & Tovar): EDF vs any adversary.
ALPHA_EDF_PRIOR: float = 3.0
#: Prior work [3]: RMS vs any adversary (1 + 1/(sqrt(2)-1) = 2 + sqrt(2)).
ALPHA_RMS_PRIOR: float = 2.0 + SQRT2


Scheduler = Literal["edf", "rms"]


@dataclass(frozen=True)
class ProofConstants:
    """One choice of the free constants of the §IV/§V analyses."""

    alpha: float
    c_s: float
    c_f: float
    f_w: float
    f_f: float


#: The constants printed in §IV.A/§IV.B for Theorem I.3.
EDF_LP_CONSTANTS = ProofConstants(
    alpha=ALPHA_EDF_LP, c_s=2.868, c_f=28.412, f_w=0.811, f_f=0.125
)
#: The constants printed in §V.A/§V.B for Theorem I.4.
RMS_LP_CONSTANTS = ProofConstants(
    alpha=ALPHA_RMS_LP, c_s=2.00, c_f=13.25, f_w=0.72, f_f=0.1956
)


def f_im(alpha: float, c_s: float, f_f: float) -> float:
    """Lemma IV.7 / V.7 lower bound on the medium-machine fraction:

    ``f_im = (1 + alpha f_f - alpha) / (alpha (1/c_s - 1))``

    For ``alpha > 1``, ``c_s > 1`` and ``f_f < 1 - 1/alpha`` both numerator
    and denominator are negative, so the bound is positive.
    """
    if c_s <= 1.0:
        raise ValueError("c_s must exceed 1")
    return (1.0 + alpha * f_f - alpha) / (alpha * (1.0 / c_s - 1.0))


def edf_conditions(pc: ProofConstants) -> dict[str, float]:
    """The three §IV proof expressions; all must exceed 1."""
    a, c_s, c_f, f_w, f_f = pc.alpha, pc.c_s, pc.c_f, pc.f_w, pc.f_f
    fim = f_im(a, c_s, f_f)
    return {
        "fast-case": (a - 1.0) * (0.5 + 1.0 / (2.0 * c_f) - 1.0 / (c_s * c_f)),
        "split": a * c_f * f_f * (1.0 - f_w) / 2.0,
        "slow-case": a * f_w * fim / 2.0,
    }


def rms_conditions(pc: ProofConstants) -> dict[str, float]:
    """The three §V proof expressions; all must exceed 1."""
    a, c_s, c_f, f_w, f_f = pc.alpha, pc.c_s, pc.c_f, pc.f_w, pc.f_f
    fim = f_im(a, c_s, f_f)
    med = SQRT2 - 1.0
    return {
        "fast-case": (a - 1.0) * (med + (LN2 - 1.0 / c_s) / c_f),
        "split": med * a * c_f * f_f * (1.0 - f_w),
        "slow-case": med * a * f_w * fim,
    }


def conditions(pc: ProofConstants, scheduler: Scheduler) -> dict[str, float]:
    """Dispatch on scheduler."""
    if scheduler == "edf":
        return edf_conditions(pc)
    if scheduler == "rms":
        return rms_conditions(pc)
    raise ValueError(f"unknown scheduler {scheduler!r}")


def _side_constraints_ok(pc: ProofConstants, scheduler: Scheduler) -> bool:
    if not (0.0 < pc.f_w < 1.0 and 0.0 < pc.f_f < 1.0 and pc.c_f > 0.0):
        return False
    if scheduler == "edf":
        # Corollary IV.3 needs 1 - 1/c_s >= 1/2.
        return pc.c_s > 2.0 or math.isclose(pc.c_s, 2.0)
    # Lemma V.2 needs ln 2 - 1/c_s > 0.
    return pc.c_s > 1.0 / LN2


def constants_valid(pc: ProofConstants, scheduler: Scheduler) -> bool:
    """Do the constants satisfy the side constraints and all three
    proof inequalities (strictly above 1)?"""
    if not _side_constraints_ok(pc, scheduler):
        return False
    return all(v > 1.0 for v in conditions(pc, scheduler).values())


# ---------------------------------------------------------------------------
# Optimizing the free constants (experiment E12)
# ---------------------------------------------------------------------------


def _med_coeff(scheduler: Scheduler) -> float:
    """Per-machine guaranteed load fraction on medium(-or-faster) machines:
    1/2 for EDF (§IV medium-machine argument), sqrt(2)-1 for RMS (Lemma V.3)."""
    return 0.5 if scheduler == "edf" else SQRT2 - 1.0


def _fast_coeff(scheduler: Scheduler, c_s: float) -> float:
    """Guaranteed load fraction on fast machines: ``1 - 1/c_s`` for EDF,
    ``ln 2 - 1/c_s`` for RMS (Lemma V.2)."""
    return (1.0 - 1.0 / c_s) if scheduler == "edf" else (LN2 - 1.0 / c_s)


def _max_c_f(alpha: float, c_s: float, scheduler: Scheduler) -> float:
    """Largest ``c_f`` keeping the fast-case condition at >= 1, or +inf.

    The two schedulers' fast-case conditions have (per the paper's own
    algebra) slightly different shapes:

    * EDF (end of Lemma IV.1):
      ``(alpha-1) (1/2 + (1/2 - 1/c_s)/c_f) >= 1`` — the fast group
      contributes its *surplus* over the medium coefficient;
    * RMS (end of Lemma V.1):
      ``(alpha-1) (sqrt2-1 + (ln2 - 1/c_s)/c_f) >= 1`` — the fast group's
      coefficient appears in full.

    Solving each for ``c_f``; the bound is active only when
    ``1/(alpha-1) > med``.
    """
    med = _med_coeff(scheduler)
    need = 1.0 / (alpha - 1.0) - med
    if need <= 0.0:
        return math.inf
    if scheduler == "edf":
        numerator = 0.5 - 1.0 / c_s
    else:
        numerator = LN2 - 1.0 / c_s
    if numerator <= 0.0:
        return 0.0  # fast machines contribute nothing: condition unsatisfiable
    return numerator / need


def _min_f_f(alpha: float, c_f: float, f_w: float, scheduler: Scheduler) -> float:
    """Smallest ``f_f`` keeping the split condition at >= 1.

    EDF split: ``alpha c_f f_f (1-f_w)/2 >= 1``;
    RMS split: ``(sqrt2-1) alpha c_f f_f (1-f_w) >= 1``.
    """
    if scheduler == "edf":
        return 2.0 / (alpha * c_f * (1.0 - f_w))
    return 1.0 / ((SQRT2 - 1.0) * alpha * c_f * (1.0 - f_w))


def slow_case_slack(
    alpha: float, c_s: float, f_w: float, scheduler: Scheduler
) -> float:
    """Value of the slow-case condition with ``c_f`` and ``f_f`` chosen
    optimally for the given ``(alpha, c_s, f_w)``; -inf when the fast-case
    condition already fails for every ``c_f``."""
    c_f = _max_c_f(alpha, c_s, scheduler)
    if c_f <= 0.0:
        return -math.inf
    if math.isinf(c_f):
        f_f = 0.0
    else:
        f_f = _min_f_f(alpha, c_f, f_w, scheduler)
        if geq(f_f, 1.0):
            return -math.inf
    fim = f_im(alpha, c_s, f_f)
    med = _med_coeff(scheduler)
    return med * alpha * f_w * fim


def best_constants_for_alpha(
    alpha: float,
    scheduler: Scheduler,
    *,
    grid: int = 160,
) -> tuple[ProofConstants, float]:
    """Best achievable slow-case slack at a given ``alpha``.

    Searches a refined grid over ``(c_s, f_w)`` (the only free dimensions
    after the analytic reductions) and returns the best constants plus
    the resulting slow-case value.  All three proof conditions hold (>1)
    iff the returned slack exceeds 1.
    """
    if alpha <= 1.0:
        raise ValueError("alpha must exceed 1")
    c_s_lo = 2.0 + 1e-9 if scheduler == "edf" else 1.0 / LN2 + 1e-9
    c_s_hi = 40.0
    f_lo, f_hi = 1e-6, 1.0 - 1e-6

    def evaluate(c_s: float, f_w: float) -> float:
        return slow_case_slack(alpha, c_s, f_w, scheduler)

    best = (-math.inf, c_s_lo, 0.5)
    c_s_grid = np.geomspace(c_s_lo, c_s_hi, grid)
    f_w_grid = np.linspace(f_lo, f_hi, grid)
    for c_s in c_s_grid:
        for f_w in f_w_grid:
            v = evaluate(float(c_s), float(f_w))
            if v > best[0]:
                best = (v, float(c_s), float(f_w))

    # Local refinement around the grid optimum.
    v, c_s, f_w = best
    span_c = (c_s_hi - c_s_lo) / grid
    span_f = (f_hi - f_lo) / grid
    for _ in range(40):
        improved = False
        for dc, df in (
            (span_c, 0.0),
            (-span_c, 0.0),
            (0.0, span_f),
            (0.0, -span_f),
        ):
            nc = min(max(c_s + dc, c_s_lo), c_s_hi)
            nf = min(max(f_w + df, f_lo), f_hi)
            nv = evaluate(nc, nf)
            if nv > v:
                v, c_s, f_w = nv, nc, nf
                improved = True
        if not improved:
            span_c *= 0.5
            span_f *= 0.5

    # Back the boundary-tight choices off by a relative sliver so the
    # returned constants satisfy the *strict* inequalities the proof needs
    # (c_f at its max makes the fast-case exactly 1; f_f at its min makes
    # the split exactly 1).
    interior = 1e-9
    c_f = _max_c_f(alpha, c_s, scheduler)
    if math.isinf(c_f):
        c_f = 1e9
        f_f = 1e-9
    elif c_f <= 0.0:
        # fast-case unsatisfiable at the grid optimum: return placeholder
        # constants; the accompanying slack is -inf.
        c_f, f_f = 1.0, 0.5
    else:
        c_f *= 1.0 - interior
        f_f = _min_f_f(alpha, c_f, f_w, scheduler) * (1.0 + interior)
    pc = ProofConstants(alpha=alpha, c_s=c_s, c_f=c_f, f_w=f_w, f_f=f_f)
    return pc, v


def minimal_alpha(
    scheduler: Scheduler,
    *,
    lo: float = 2.0,
    hi: float = 4.0,
    tol: float = 1e-3,
    grid: int = 120,
) -> tuple[float, ProofConstants]:
    """Smallest ``alpha`` for which the proof technique's three conditions
    can all be satisfied, via bisection on the best slow-case slack.

    Reproduces (up to the paper's rounding) the headline constants:
    ~2.97 for EDF (paper states 2.98) and ~3.33 for RMS (paper states
    3.34).
    """

    def feasible(alpha: float) -> tuple[bool, ProofConstants]:
        pc, slack = best_constants_for_alpha(alpha, scheduler, grid=grid)
        return slack > 1.0, pc

    ok_hi, pc_hi = feasible(hi)
    if not ok_hi:
        raise RuntimeError(f"upper alpha {hi} infeasible for {scheduler}")
    ok_lo, pc_lo = feasible(lo)
    if ok_lo:
        return lo, pc_lo
    best_pc = pc_hi
    while hi - lo > tol:
        mid = 0.5 * (lo + hi)
        ok, pc = feasible(mid)
        if ok:
            hi = mid
            best_pc = pc
        else:
            lo = mid
    return hi, best_pc


def alpha_frontier(
    scheduler: Scheduler,
    c_f_values: list[float],
    *,
    tol: float = 2e-3,
) -> list[tuple[float, float]]:
    """For each pinned ``c_f``, the minimum feasible ``alpha`` (or inf).

    Traces how the choice of the fast-machine threshold constant trades
    against the achievable approximation factor (experiment E12 / Fig. 7).
    """

    def feasible(alpha: float, c_f: float) -> bool:
        c_s_lo = 2.0 + 1e-9 if scheduler == "edf" else 1.0 / LN2 + 1e-9
        for c_s in np.geomspace(c_s_lo, 40.0, 80):
            if _max_c_f(alpha, float(c_s), scheduler) < c_f:
                continue  # fast-case fails at this (c_s, c_f)
            for f_w in np.linspace(1e-4, 1.0 - 1e-4, 80):
                f_f = _min_f_f(alpha, c_f, float(f_w), scheduler)
                if f_f >= 1.0:
                    continue
                fim = f_im(alpha, float(c_s), f_f)
                if _med_coeff(scheduler) * alpha * f_w * fim > 1.0:
                    return True
        return False

    out: list[tuple[float, float]] = []
    for c_f in c_f_values:
        lo, hi = 1.5, 6.0
        if not feasible(hi, c_f):
            out.append((c_f, math.inf))
            continue
        while hi - lo > tol:
            mid = 0.5 * (lo + hi)
            if feasible(mid, c_f):
                hi = mid
            else:
                lo = mid
        out.append((c_f, hi))
    return out
