"""Demand bound functions and exact EDF tests for constrained deadlines.

The paper treats implicit deadlines, where EDF schedulability on a
speed-``s`` machine collapses to ``sum w_i <= s`` (Theorem II.2).  For
*constrained* (``d <= p``) or arbitrary deadlines, the exact uniprocessor
EDF condition is the processor-demand criterion (Baruah, Rosier & Howell):

    for all t > 0:   dbf(t) <= s * t

with the demand bound function

    dbf(t) = sum_i max(0, floor((t - d_i) / p_i) + 1) * c_i.

It suffices to check the (finitely many) step points up to a bound ``L``
(the "synchronous busy interval" bound ``L_a``), and Zhang & Burns' QPA
iteration checks far fewer points in practice.  Both are implemented and
cross-checked against each other and the simulator in the test suite.

This module is the substrate for extending the paper's partitioner to
constrained deadlines: :class:`EDFDemandBoundTest` plugs the exact QPA
test into the §III first-fit loop in place of the utilization test
(pseudo-polynomial per probe rather than O(1) — the price of exactness,
cf. the approximate demand-bound approach of [7]).
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

from .bounds import AdmissionTest, MachineState
from .model import EPS, Task, leq

__all__ = [
    "dbf",
    "dbf_taskset",
    "demand_points",
    "demand_bound_horizon",
    "edf_demand_feasible",
    "qpa_edf_feasible",
    "EDFDemandBoundTest",
]


def dbf(task: Task, t: float) -> float:
    """Demand of one sporadic task over any interval of length ``t``:
    the work of all jobs that can both arrive and be due inside it."""
    if t < task.deadline - EPS:
        return 0.0
    jobs = math.floor((t - task.deadline) / task.period + EPS) + 1
    return jobs * task.wcet


def dbf_taskset(tasks: Iterable[Task], t: float) -> float:
    """Total demand bound of a task set at interval length ``t``."""
    return math.fsum(dbf(task, t) for task in tasks)


def _rational_hyperperiod(
    periods: Sequence[float], *, cap: float = 1e7
) -> float | None:
    """lcm of the periods as rationals (limit-denominator 1e6), or None
    when irrational-looking or beyond ``cap``."""
    from fractions import Fraction

    acc = Fraction(0)
    for p in periods:
        f = Fraction(p).limit_denominator(10**6)
        if abs(float(f) - p) > 1e-9 * max(1.0, p):
            return None
        if acc == 0:
            acc = f
        else:
            acc = Fraction(
                math.lcm(acc.numerator, f.numerator),
                math.gcd(acc.denominator, f.denominator),
            )
        if acc > cap:
            return None
    return float(acc)


def demand_bound_horizon(tasks: Sequence[Task], speed: float) -> float | None:
    """A finite check horizon for the processor-demand criterion.

    Two valid bounds are combined (the smaller wins):

    * ``L_a = sum_i max(0, p_i - d_i) u_i / (speed - U)`` — beyond it the
      linear upper bound on dbf sits below ``speed * t`` (needs slack);
    * the hyperperiod ``H`` — ``dbf(t) - speed*t`` cannot attain a new
      maximum after one hyperperiod when ``U <= speed``, so a violation
      anywhere implies one in ``(0, H]``.

    Returns None when the set is trivially infeasible (``U > speed``) —
    or, *conservatively*, in the degenerate case ``U == speed`` with
    constrained deadlines and an uncomputable hyperperiod (irrational or
    astronomically large periods): there the test errs on rejection.
    """
    total_u = math.fsum(t.utilization for t in tasks)
    if total_u > speed * (1.0 + EPS):
        return None
    d_max = max(t.deadline for t in tasks)
    # B == 0 means every deadline >= its period: dbf(t) <= U t <= speed t.
    b = math.fsum(
        max(0.0, t.period - t.deadline) * t.utilization for t in tasks
    )
    if b <= EPS:
        return d_max
    slack = speed - total_u
    la = b / slack if slack > EPS * speed else math.inf
    hp = _rational_hyperperiod([t.period for t in tasks])
    hp_bound = hp if hp is not None else math.inf
    bound = min(la, hp_bound)
    if math.isinf(bound):
        return None  # degenerate: conservative rejection (see docstring)
    return max(d_max, bound)


def demand_points(
    tasks: Sequence[Task], horizon: float, *, max_points: int = 1_000_000
) -> list[float]:
    """All dbf step points (``d_i + k p_i``) in ``(0, horizon]``, sorted.

    Raises
    ------
    RuntimeError
        if the point set would exceed ``max_points`` (pick QPA instead).
    """
    points: set[float] = set()
    for task in tasks:
        t = task.deadline
        count = 0
        while t <= horizon * (1.0 + EPS):
            points.add(t)
            t += task.period
            count += 1
            if len(points) > max_points:
                raise RuntimeError(
                    f"more than {max_points} demand points up to {horizon}; "
                    "use qpa_edf_feasible"
                )
    return sorted(points)


def edf_demand_feasible(
    tasks: Sequence[Task], speed: float = 1.0, *, max_points: int = 1_000_000
) -> bool:
    """Exact EDF test by exhaustive processor-demand checking.

    Reference implementation (clear, slower); :func:`qpa_edf_feasible`
    is the production variant.  Both must agree — the suite enforces it.
    """
    if speed <= 0:
        raise ValueError("speed must be positive")
    if not tasks:
        return True
    horizon = demand_bound_horizon(tasks, speed)
    if horizon is None:
        return False
    for t in demand_points(tasks, horizon, max_points=max_points):
        if not leq(dbf_taskset(tasks, t), speed * t):
            return False
    return True


def qpa_edf_feasible(tasks: Sequence[Task], speed: float = 1.0) -> bool:
    """Zhang & Burns' Quick Processor-demand Analysis on a speed-``s``
    machine.

    Iterates ``t <- h(t)`` (where ``h(t) = dbf(t)/s``) downward from just
    below the ``L_a`` bound, jumping to the next lower deadline at fixed
    points; the set is schedulable iff the iteration exits below the
    smallest deadline without finding ``h(t) > t``.
    """
    if speed <= 0:
        raise ValueError("speed must be positive")
    if not tasks:
        return True
    horizon = demand_bound_horizon(tasks, speed)
    if horizon is None:
        return False
    d_min = min(t.deadline for t in tasks)

    def largest_deadline_below(x: float) -> float:
        best = 0.0
        for task in tasks:
            if task.deadline < x - EPS:
                # largest step point d + k p strictly below x
                k = math.floor((x - task.deadline) / task.period - EPS)
                k = max(0, k)
                cand = task.deadline + k * task.period
                while cand >= x - EPS and k > 0:
                    k -= 1
                    cand = task.deadline + k * task.period
                if cand < x - EPS:
                    best = max(best, cand)
        return best

    # Canonical QPA loop (Zhang & Burns 2009, Alg. 1), with h(t) =
    # dbf(t)/speed:
    #   t = max{step point < L}
    #   while h(t) <= t and h(t) > d_min:
    #       t = h(t)                 if h(t) < t
    #       t = max{step point < t}  otherwise
    #   feasible iff h(t) <= d_min
    t = largest_deadline_below(horizon * (1.0 + EPS))
    if t <= 0:
        return True
    guard = 0
    max_iter = 1_000_000
    h = dbf_taskset(tasks, t) / speed
    while leq(h, t) and h > d_min + EPS * max(1.0, d_min):
        guard += 1
        if guard > max_iter:  # pragma: no cover - convergence safety net
            return edf_demand_feasible(tasks, speed)
        if h < t * (1.0 - EPS):
            t = h
        else:
            t = largest_deadline_below(t)
            if t <= 0:
                return True
        h = dbf_taskset(tasks, t) / speed
    return leq(h, d_min)


class _DBFState(MachineState):
    __slots__ = ("_tasks", "_load")

    def __init__(self, speed: float):
        super().__init__(speed)
        self._tasks: list[Task] = []
        self._load = 0.0

    def admits(self, task: Task) -> bool:
        return qpa_edf_feasible(self._tasks + [task], self.speed)

    def add(self, task: Task) -> None:
        self._tasks.append(task)
        self._load += task.utilization

    @property
    def load(self) -> float:
        return self._load

    @property
    def count(self) -> int:
        return len(self._tasks)


class EDFDemandBoundTest(AdmissionTest):
    """Exact EDF admission for constrained/arbitrary deadlines (QPA).

    Plugs into :func:`repro.core.partition.partition` like any admission
    test; for implicit-deadline sets it agrees exactly with the paper's
    utilization test (property-tested).  Pseudo-polynomial per probe.
    """

    name = "edf-dbf"

    def open(self, speed: float) -> MachineState:
        return _DBFState(speed)

    def feasible(self, tasks: Sequence[Task], speed: float) -> bool:
        return qpa_edf_feasible(tasks, speed)


# Make "edf-dbf" resolvable by name in the partitioner, like the built-ins.
from .bounds import ADMISSION_TESTS as _REGISTRY  # noqa: E402

_REGISTRY.setdefault("edf-dbf", EDFDemandBoundTest())
