"""Demand bound functions and exact EDF tests for constrained deadlines.

The paper treats implicit deadlines, where EDF schedulability on a
speed-``s`` machine collapses to ``sum w_i <= s`` (Theorem II.2).  For
*constrained* (``d <= p``) or arbitrary deadlines, the exact uniprocessor
EDF condition is the processor-demand criterion (Baruah, Rosier & Howell):

    for all t > 0:   dbf(t) <= s * t

with the demand bound function

    dbf(t) = sum_i max(0, floor((t - d_i) / p_i) + 1) * c_i.

It suffices to check the (finitely many) step points up to a bound ``L``
(the "synchronous busy interval" bound ``L_a``), and Zhang & Burns' QPA
iteration checks far fewer points in practice.  Both are implemented and
cross-checked against each other and the simulator in the test suite.

This module is the substrate for extending the paper's partitioner to
constrained deadlines: :class:`EDFDemandBoundTest` plugs the exact QPA
test into the §III first-fit loop in place of the utilization test
(pseudo-polynomial per probe rather than O(1) — the price of exactness,
cf. the approximate demand-bound approach of [7]).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from .bounds import AdmissionTest, MachineState, _NeumaierSum
from .model import EPS, Task, leq, lt, tol_floor

__all__ = [
    "dbf",
    "dbf_taskset",
    "demand_points",
    "demand_bound_horizon",
    "edf_demand_feasible",
    "qpa_edf_feasible",
    "qpa_feasible_params",
    "EDFDemandBoundTest",
    "ProfileCacheStats",
    "profile_cache_stats",
    "reset_profile_cache",
]

#: Parameter triple ``(wcet, period, deadline)`` — the name-free form the
#: demand-profile cache is keyed by and the batch kernels operate on.
TaskParams = tuple[float, float, float]


def dbf(task: Task, t: float) -> float:
    """Demand of one sporadic task over any interval of length ``t``:
    the work of all jobs that can both arrive and be due inside it.

    Both boundary decisions are scale-aware (:func:`~.model.lt` /
    :func:`~.model.tol_floor`): at ``t = d + k*p`` the ``k+1``-th job
    counts no matter how large ``t``, ``d`` or ``k`` are — an absolute
    ``EPS`` nudge stops rescuing exact crossovers once the division
    error exceeds ``1e-9``.
    """
    if lt(t, task.deadline):
        return 0.0
    jobs = tol_floor((t - task.deadline) / task.period) + 1
    return jobs * task.wcet


def dbf_taskset(tasks: Iterable[Task], t: float) -> float:
    """Total demand bound of a task set at interval length ``t``.

    Routed through the per-taskset :class:`_DemandProfile` cache: repeat
    queries on the same task set (the partitioner probes the same
    candidate sets at many interval lengths) hit precomputed parameter
    arrays instead of re-walking Task objects.  ``math.fsum`` is exactly
    rounded, so the cached array walk returns bit-identical values to the
    naive per-task sum.
    """
    tasks = tuple(tasks)
    if not tasks:
        return 0.0
    return _profile(tasks).dbf(t)


def _rational_hyperperiod(
    periods: Sequence[float], *, cap: float = 1e7
) -> float | None:
    """lcm of the periods as rationals (limit-denominator 1e6), or None
    when irrational-looking or beyond ``cap``."""
    from fractions import Fraction

    acc = Fraction(0)
    for p in periods:
        f = Fraction(p).limit_denominator(10**6)
        if abs(float(f) - p) > 1e-9 * max(1.0, p):
            return None
        if acc == 0:
            acc = f
        else:
            acc = Fraction(
                math.lcm(acc.numerator, f.numerator),
                math.gcd(acc.denominator, f.denominator),
            )
        if acc > cap:
            return None
    return float(acc)


class _DemandProfile:
    """Memoized demand machinery for one task set.

    The constrained-deadline first-fit loop (and the exact adversaries'
    branch-and-bound) probe the *same* candidate task sets over and over
    at different machine speeds; everything speed-independent (parameter
    arrays, the hyperperiod) is computed once here, and the
    speed-dependent horizon, step-point sets and QPA verdicts are
    memoized per query.  All sums go through ``math.fsum`` (exactly
    rounded, order-independent), so cached answers are bit-identical to
    the uncached formulas they replace.
    """

    __slots__ = (
        "tasks",
        "deadlines",
        "periods",
        "wcets",
        "d_min",
        "d_max",
        "total_u",
        "slack_numerator",
        "_hyperperiod",
        "_hyperperiod_ready",
        "_horizons",
        "_points",
        "_qpa",
    )

    def __init__(self, tasks: tuple[Task, ...]):
        self.tasks = tasks
        self.deadlines = np.array([t.deadline for t in tasks], dtype=float)
        self.periods = np.array([t.period for t in tasks], dtype=float)
        self.wcets = np.array([t.wcet for t in tasks], dtype=float)
        self.d_min = min(t.deadline for t in tasks)
        self.d_max = max(t.deadline for t in tasks)
        self.total_u = math.fsum(t.utilization for t in tasks)
        # B == 0 means every deadline >= its period (see horizon()).
        self.slack_numerator = math.fsum(
            max(0.0, t.period - t.deadline) * t.utilization for t in tasks
        )
        self._hyperperiod: float | None = None
        self._hyperperiod_ready = False
        self._horizons: dict[float, float | None] = {}
        self._points: dict[tuple[float, int], list[float]] = {}
        self._qpa: dict[float, bool] = {}

    def dbf(self, t: float) -> float:
        """Total demand bound at interval length ``t`` (array walk).

        Elementwise IEEE-identical to the scalar :func:`dbf`: the gate
        replays ``lt(t, d)`` (``d > t + eps*max(1, |t|, |d|)``) and the
        job count replays ``tol_floor(q)`` with the same operation
        order, so the fsum over this array equals the fsum over
        per-task scalar calls bit for bit.
        """
        q = (t - self.deadlines) / self.periods
        jobs = np.floor(q + EPS * np.maximum(1.0, np.abs(q))) + 1.0
        tol = EPS * np.maximum(1.0, np.maximum(abs(t), np.abs(self.deadlines)))
        demand = np.where(self.deadlines > t + tol, 0.0, jobs * self.wcets)
        return math.fsum(demand)

    def hyperperiod(self) -> float | None:
        if not self._hyperperiod_ready:
            self._hyperperiod = _rational_hyperperiod(
                [t.period for t in self.tasks]
            )
            self._hyperperiod_ready = True
        return self._hyperperiod

    def horizon(self, speed: float) -> float | None:
        """Memoized :func:`demand_bound_horizon` for this task set."""
        if speed in self._horizons:
            return self._horizons[speed]
        result = self._horizon(speed)
        self._horizons[speed] = result
        return result

    def _horizon(self, speed: float) -> float | None:
        if self.total_u > speed * (1.0 + EPS):
            return None
        if leq(self.slack_numerator, 0.0):
            return self.d_max
        slack = speed - self.total_u
        la = self.slack_numerator / slack if slack > EPS * speed else math.inf
        hp = self.hyperperiod()
        hp_bound = hp if hp is not None else math.inf
        bound = min(la, hp_bound)
        if math.isinf(bound):
            return None  # degenerate: conservative rejection (see docstring)
        return max(self.d_max, bound)

    def points(self, horizon: float, max_points: int) -> list[float]:
        """Memoized sorted dbf step points in ``(0, horizon]``."""
        key = (horizon, max_points)
        if key not in self._points:
            self._points[key] = demand_points(
                self.tasks, horizon, max_points=max_points
            )
        return self._points[key]


#: Bounded FIFO cache of demand profiles keyed by the task parameters
#: (names excluded — they do not affect the mathematics).  Eviction is
#: least-recently-used: a hit refreshes its entry, so the candidate sets a
#: long fuzz or branch-and-bound campaign keeps re-probing stay resident
#: while one-shot instances age out.
_PROFILES: dict[tuple, _DemandProfile] = {}
_PROFILE_CACHE_MAX = 4096
_PROFILE_HITS = 0
_PROFILE_MISSES = 0
_PROFILE_EVICTIONS = 0


@dataclass(frozen=True)
class ProfileCacheStats:
    """Snapshot of the demand-profile cache counters."""

    hits: int
    misses: int
    evictions: int
    size: int
    capacity: int

    @property
    def hit_ratio(self) -> float:
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0

    def as_dict(self) -> dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "size": self.size,
            "capacity": self.capacity,
            "hit_ratio": self.hit_ratio,
        }

    def describe(self) -> str:
        return (
            f"dbf profile cache: {self.hits} hits / "
            f"{self.hits + self.misses} lookups "
            f"({self.hit_ratio:.0%}), {self.evictions} evictions, "
            f"size {self.size}/{self.capacity}"
        )


def profile_cache_stats() -> ProfileCacheStats:
    """Current demand-profile cache counters (per process)."""
    return ProfileCacheStats(
        hits=_PROFILE_HITS,
        misses=_PROFILE_MISSES,
        evictions=_PROFILE_EVICTIONS,
        size=len(_PROFILES),
        capacity=_PROFILE_CACHE_MAX,
    )


def reset_profile_cache() -> None:
    """Drop every cached profile and zero the counters (test isolation)."""
    global _PROFILE_HITS, _PROFILE_MISSES, _PROFILE_EVICTIONS
    _PROFILES.clear()
    _PROFILE_HITS = _PROFILE_MISSES = _PROFILE_EVICTIONS = 0


def _profile(tasks: Sequence[Task]) -> _DemandProfile:
    key = tuple((t.wcet, t.period, t.deadline) for t in tasks)
    return _profile_by_key(key, tuple(tasks))


def _profile_by_key(
    key: tuple[TaskParams, ...], tasks: tuple[Task, ...] | None = None
) -> _DemandProfile:
    global _PROFILE_HITS, _PROFILE_MISSES, _PROFILE_EVICTIONS
    prof = _PROFILES.get(key)
    if prof is None:
        _PROFILE_MISSES += 1
        if len(_PROFILES) >= _PROFILE_CACHE_MAX:
            _PROFILES.pop(next(iter(_PROFILES)))
            _PROFILE_EVICTIONS += 1
        if tasks is None:
            # params-keyed entry (batch kernels): materialize Task
            # objects only on a cache miss — hits never touch them
            tasks = tuple(
                Task(wcet=w, period=p, deadline=d) for (w, p, d) in key
            )
        prof = _DemandProfile(tasks)
    else:
        _PROFILE_HITS += 1
        # refresh recency: dicts preserve insertion order, so re-inserting
        # moves the entry behind every colder one
        del _PROFILES[key]
    _PROFILES[key] = prof
    return prof


def demand_bound_horizon(tasks: Sequence[Task], speed: float) -> float | None:
    """A finite check horizon for the processor-demand criterion.

    Two valid bounds are combined (the smaller wins):

    * ``L_a = sum_i max(0, p_i - d_i) u_i / (speed - U)`` — beyond it the
      linear upper bound on dbf sits below ``speed * t`` (needs slack);
    * the hyperperiod ``H`` — ``dbf(t) - speed*t`` cannot attain a new
      maximum after one hyperperiod when ``U <= speed``, so a violation
      anywhere implies one in ``(0, H]``.

    Returns None when the set is trivially infeasible (``U > speed``) —
    or, *conservatively*, in the degenerate case ``U == speed`` with
    constrained deadlines and an uncomputable hyperperiod (irrational or
    astronomically large periods): there the test errs on rejection.

    Memoized per (task set, speed): repeated probes of the same candidate
    set are answered from the profile cache.
    """
    if not tasks:
        raise ValueError("demand_bound_horizon needs a non-empty task set")
    return _profile(tuple(tasks)).horizon(speed)


def demand_points(
    tasks: Sequence[Task], horizon: float, *, max_points: int = 1_000_000
) -> list[float]:
    """All dbf step points (``d_i + k p_i``) in ``(0, horizon]``, sorted.

    Raises
    ------
    RuntimeError
        if the point set would exceed ``max_points`` (pick QPA instead).
    """
    points: set[float] = set()
    for task in tasks:
        # step points are generated multiplicatively (d + k*p), not by a
        # running t += p: the additive walk accretes one rounding error
        # per step and can drift off the true grid over long horizons
        count = 0
        t = task.deadline
        while leq(t, horizon):
            points.add(t)
            count += 1
            t = task.deadline + count * task.period
            if len(points) > max_points:
                raise RuntimeError(
                    f"more than {max_points} demand points up to {horizon}; "
                    "use qpa_edf_feasible"
                )
    return sorted(points)


def edf_demand_feasible(
    tasks: Sequence[Task], speed: float = 1.0, *, max_points: int = 1_000_000
) -> bool:
    """Exact EDF test by exhaustive processor-demand checking.

    Reference implementation (clear, slower); :func:`qpa_edf_feasible`
    is the production variant.  Both must agree — the suite enforces it.
    """
    if speed <= 0:
        raise ValueError("speed must be positive")
    if not tasks:
        return True
    prof = _profile(tuple(tasks))
    horizon = prof.horizon(speed)
    if horizon is None:
        return False
    for t in prof.points(horizon, max_points):
        if not leq(prof.dbf(t), speed * t):
            return False
    return True


def qpa_edf_feasible(tasks: Sequence[Task], speed: float = 1.0) -> bool:
    """Zhang & Burns' Quick Processor-demand Analysis on a speed-``s``
    machine.

    Iterates ``t <- h(t)`` (where ``h(t) = dbf(t)/s``) downward from just
    below the ``L_a`` bound, jumping to the next lower deadline at fixed
    points; the set is schedulable iff the iteration exits below the
    smallest deadline without finding ``h(t) > t``.
    """
    if speed <= 0:
        raise ValueError("speed must be positive")
    if not tasks:
        return True
    return _qpa_verdict(_profile(tuple(tasks)), speed)


def qpa_feasible_params(
    params: Sequence[TaskParams], speed: float
) -> bool:
    """QPA verdict for name-free ``(wcet, period, deadline)`` triples.

    Same memoized profiles and verdicts as :func:`qpa_edf_feasible` —
    the two entry points share the cache key (task names are excluded
    from it), so the batch kernels' first-fit probes and the scalar
    partitioner's probes answer each other bit-identically by
    construction.
    """
    if speed <= 0:
        raise ValueError("speed must be positive")
    if not params:
        return True
    return _qpa_verdict(_profile_by_key(tuple(params)), speed)


def _qpa_verdict(prof: _DemandProfile, speed: float) -> bool:
    cached = prof._qpa.get(speed)
    if cached is not None:
        return cached
    verdict = _qpa_uncached(prof, speed)
    prof._qpa[speed] = verdict
    return verdict


def _qpa_uncached(prof: _DemandProfile, speed: float) -> bool:
    horizon = prof.horizon(speed)
    if horizon is None:
        return False
    d_min = prof.d_min
    step_params = list(zip(prof.deadlines.tolist(), prof.periods.tolist()))

    def largest_deadline_below(x: float) -> float:
        best = 0.0
        for deadline, period in step_params:
            if lt(deadline, x):
                # largest step point d + k p strictly below x; tol_floor
                # may land on or past x at an exact crossover, so walk k
                # down until the point is tolerantly below
                k = tol_floor((x - deadline) / period)
                k = max(0, k)
                cand = deadline + k * period
                while not lt(cand, x) and k > 0:
                    k -= 1
                    cand = deadline + k * period
                if lt(cand, x):
                    best = max(best, cand)
        return best

    # Canonical QPA loop (Zhang & Burns 2009, Alg. 1), with h(t) =
    # dbf(t)/speed:
    #   t = max{step point < L}
    #   while h(t) <= t and h(t) > d_min:
    #       t = h(t)                 if h(t) < t
    #       t = max{step point < t}  otherwise
    #   feasible iff h(t) <= d_min
    t = largest_deadline_below(horizon * (1.0 + EPS))
    if t <= 0:
        return True
    guard = 0
    max_iter = 1_000_000
    h = prof.dbf(t) / speed
    while leq(h, t) and h > d_min + EPS * max(1.0, d_min):
        guard += 1
        if guard > max_iter:  # pragma: no cover - convergence safety net
            return edf_demand_feasible(prof.tasks, speed)
        if h < t * (1.0 - EPS):
            t = h
        else:
            t = largest_deadline_below(t)
            if t <= 0:
                return True
        h = prof.dbf(t) / speed
    return leq(h, d_min)


class _DBFState(MachineState):
    __slots__ = ("_tasks", "_load")

    def __init__(self, speed: float):
        super().__init__(speed)
        self._tasks: list[Task] = []
        self._load = _NeumaierSum()

    def admits(self, task: Task) -> bool:
        return qpa_edf_feasible(self._tasks + [task], self.speed)

    def add(self, task: Task) -> None:
        self._tasks.append(task)
        self._load.add(task.utilization)

    @property
    def load(self) -> float:
        return self._load.total

    @property
    def count(self) -> int:
        return len(self._tasks)


class EDFDemandBoundTest(AdmissionTest):
    """Exact EDF admission for constrained/arbitrary deadlines (QPA).

    Plugs into :func:`repro.core.partition.partition` like any admission
    test; for implicit-deadline sets it agrees exactly with the paper's
    utilization test (property-tested).  Pseudo-polynomial per probe, but
    probes are memoized per (task set, speed) through the module's demand
    profile cache, so the first-fit loop (and the exact adversaries'
    branch-and-bound) stop recomputing identical step-point sets when
    they re-probe the same candidate assignment.
    """

    name = "edf-dbf"

    def open(self, speed: float) -> MachineState:
        return _DBFState(speed)

    def feasible(self, tasks: Sequence[Task], speed: float) -> bool:
        return qpa_edf_feasible(tasks, speed)


# Make "edf-dbf" resolvable by name in the partitioner, like the built-ins.
from .bounds import ADMISSION_TESTS as _REGISTRY  # noqa: E402

_REGISTRY.setdefault("edf-dbf", EDFDemandBoundTest())
