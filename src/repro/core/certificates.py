"""Executable proof machinery: machine classes, load bounds, certificates.

The §IV/§V analyses reason about a *failed* first-fit run.  This module
turns each ingredient of those proofs into a checkable predicate on a
concrete :class:`~repro.core.partition.PartitionResult`:

* the slow/medium/fast machine classification around the failing task's
  utilization ``w_n`` (``alpha s_s = w_n``, ``alpha s_f = w_n c_s``),
* the per-machine load lower bounds (EDF: medium machines carry at least
  ``alpha s/2``, fast machines at least ``(1-1/c_s) alpha s``; RMS:
  Lemmas V.2/V.3),
* Corollary IV.3 and its RMS analogue, and
* the partitioned-infeasibility *certificate* behind Theorems I.1/I.2:
  when first-fit fails at the theorem's alpha, the failing prefix of
  tasks (all with utilization >= ``w_n``) outweighs the total speed of
  every machine that could legally host any of them, so **no** partitioned
  schedule exists.  The certificate carries the numbers and can be
  re-verified independently of the theorem.

The test suite uses these predicates as property-based oracles: every
randomly generated failing run must satisfy every lemma's bound.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .constants import LN2, SQRT2
from .model import EPS, Platform, TaskSet, geq
from .partition import PartitionResult

__all__ = [
    "MachineClasses",
    "classify_machines",
    "FailureCertificate",
    "partitioned_infeasibility_certificate",
    "edf_load_bounds_hold",
    "rms_load_bounds_hold",
    "corollary_iv3_holds",
    "corollary_v3_holds",
]


@dataclass(frozen=True)
class MachineClasses:
    """§IV machine grouping for a failing utilization ``w_n``.

    slow:   ``alpha * s < w_n``          (cannot host the failing task even empty)
    fast:   ``alpha * s >= w_n * c_s``
    medium: in between.

    Indices refer to the platform's canonical speed-ascending order, so
    each group is a contiguous range.
    """

    slow: tuple[int, ...]
    medium: tuple[int, ...]
    fast: tuple[int, ...]
    s_s: float  # slow/medium threshold speed  (= w_n / alpha)
    s_f: float  # medium/fast threshold speed  (= w_n c_s / alpha)

    def group_of(self, machine_index: int) -> str:
        if machine_index in self.slow:
            return "slow"
        if machine_index in self.medium:
            return "medium"
        return "fast"


def classify_machines(
    platform: Platform, w_n: float, alpha: float, c_s: float
) -> MachineClasses:
    """Split machines into the paper's slow/medium/fast groups."""
    if w_n <= 0:
        raise ValueError("w_n must be positive")
    if alpha <= 0 or c_s <= 1.0:
        raise ValueError("need alpha > 0 and c_s > 1")
    s_s = w_n / alpha
    s_f = w_n * c_s / alpha
    slow: list[int] = []
    medium: list[int] = []
    fast: list[int] = []
    for j, m in enumerate(platform):
        if m.speed < s_s * (1.0 - EPS):
            slow.append(j)
        elif geq(m.speed, s_f):
            fast.append(j)
        else:
            medium.append(j)
    return MachineClasses(
        slow=tuple(slow), medium=tuple(medium), fast=tuple(fast), s_s=s_s, s_f=s_f
    )


@dataclass(frozen=True)
class FailureCertificate:
    """Evidence that *no partitioned schedule* exists (Theorems I.1/I.2).

    Construction: first-fit (with the theorem's alpha) failed at a task of
    utilization ``w_n``.  Every task in the failing prefix has utilization
    at least ``w_n``, so under *any* partitioned schedule each of them must
    live on a machine of speed at least ``w_n`` — and per-machine EDF is
    exact, so the prefix's total utilization may not exceed the total
    speed of those machines.  The theorems guarantee it does.
    """

    #: utilization of the task first-fit failed on
    w_n: float
    #: total utilization of the failing prefix (assigned tasks + failing task)
    prefix_utilization: float
    #: machines (canonical indices) of speed >= w_n — the only legal hosts
    eligible_machines: tuple[int, ...]
    #: their total (non-augmented) speed
    eligible_capacity: float
    #: speed augmentation first-fit ran with
    alpha: float
    #: admission test used ("edf" / "rms-ll")
    test_name: str

    @property
    def certifies(self) -> bool:
        """True iff the arithmetic actually proves partitioned infeasibility."""
        return self.prefix_utilization > self.eligible_capacity * (1.0 + EPS)


def partitioned_infeasibility_certificate(
    taskset: TaskSet, platform: Platform, result: PartitionResult
) -> FailureCertificate:
    """Build the Theorem I.1/I.2 certificate from a failed first-fit run.

    The returned certificate's :attr:`~FailureCertificate.certifies` is
    guaranteed True by Theorem I.1 when ``result`` used EDF admission with
    ``alpha >= 2``, and by Theorem I.2 when it used RMS Liu–Layland
    admission with ``alpha >= 1 + sqrt(2)`` — for smaller alphas it may or
    may not certify.

    Raises
    ------
    ValueError
        if ``result`` did not fail.
    """
    if result.success or result.failed_task is None:
        raise ValueError("certificate requires a failed partition result")
    w_n = taskset[result.failed_task].utilization
    # the failing prefix: everything placed before the failure, plus tau_n
    prefix = [i for i in result.order if result.assignment[i] is not None]
    prefix.append(result.failed_task)
    prefix_util = math.fsum(taskset[i].utilization for i in prefix)
    eligible = tuple(
        j for j, m in enumerate(platform) if geq(m.speed, w_n)
    )
    capacity = math.fsum(platform[j].speed for j in eligible)
    return FailureCertificate(
        w_n=w_n,
        prefix_utilization=prefix_util,
        eligible_machines=eligible,
        eligible_capacity=capacity,
        alpha=result.alpha,
        test_name=result.test_name,
    )


def edf_load_bounds_hold(
    taskset: TaskSet,
    platform: Platform,
    result: PartitionResult,
    c_s: float,
) -> bool:
    """§IV.A load lower bounds on a failed EDF first-fit run.

    Medium machines (``w_n <= alpha s < w_n c_s``) must carry at least
    ``alpha s / 2``; fast machines (``alpha s >= w_n c_s``) at least
    ``(1 - 1/c_s) alpha s``.
    """
    if result.success or result.failed_task is None:
        raise ValueError("requires a failed partition result")
    w_n = taskset[result.failed_task].utilization
    classes = classify_machines(platform, w_n, result.alpha, c_s)
    for j in classes.medium:
        if not geq(result.loads[j], result.alpha * platform[j].speed / 2.0):
            return False
    for j in classes.fast:
        bound = (1.0 - 1.0 / c_s) * result.alpha * platform[j].speed
        if not geq(result.loads[j], bound):
            return False
    return True


def rms_load_bounds_hold(
    taskset: TaskSet,
    platform: Platform,
    result: PartitionResult,
    c_s: float,
) -> bool:
    """§V.A load lower bounds on a failed RMS (Liu–Layland) first-fit run.

    Lemma V.3: every machine with ``alpha s >= w_n`` carries at least
    ``(sqrt 2 - 1) alpha s``.  Lemma V.2: every fast machine carries more
    than ``(ln 2 - 1/c_s) alpha s_f``.
    """
    if result.success or result.failed_task is None:
        raise ValueError("requires a failed partition result")
    w_n = taskset[result.failed_task].utilization
    classes = classify_machines(platform, w_n, result.alpha, c_s)
    for j in classes.medium + classes.fast:
        if not geq(result.loads[j], (SQRT2 - 1.0) * result.alpha * platform[j].speed):
            return False
    fast_floor = (LN2 - 1.0 / c_s) * result.alpha * classes.s_f
    for j in classes.fast:
        if not geq(result.loads[j], fast_floor):
            return False
    return True


def _non_slow_speed(
    taskset: TaskSet, platform: Platform, result: PartitionResult
) -> tuple[float, float]:
    """(total utilization of tasks placed before the failure,
    total speed of machines with ``alpha s >= w_n``)."""
    w_n = taskset[result.failed_task].utilization  # type: ignore[index]
    placed_util = math.fsum(
        taskset[i].utilization
        for i in result.order
        if result.assignment[i] is not None
    )
    non_slow = math.fsum(
        m.speed for m in platform if geq(result.alpha * m.speed, w_n)
    )
    return placed_util, non_slow


def corollary_iv3_holds(
    taskset: TaskSet, platform: Platform, result: PartitionResult
) -> bool:
    """Corollary IV.3 on a failed EDF run:
    ``(alpha/2) * sum_{non-slow} s <= sum_{placed} w``."""
    if result.success:
        raise ValueError("requires a failed partition result")
    placed_util, non_slow = _non_slow_speed(taskset, platform, result)
    return geq(placed_util, result.alpha / 2.0 * non_slow)


def corollary_v3_holds(
    taskset: TaskSet, platform: Platform, result: PartitionResult
) -> bool:
    """RMS analogue (from Lemma V.3):
    ``(sqrt 2 - 1) alpha * sum_{non-slow} s <= sum_{placed} w``."""
    if result.success:
        raise ValueError("requires a failed partition result")
    placed_util, non_slow = _non_slow_speed(taskset, platform, result)
    return geq(placed_util, (SQRT2 - 1.0) * result.alpha * non_slow)
