"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``test``        run one of the four theorem feasibility tests on a JSON instance
``generate``    draw a synthetic instance and write it as JSON
``simulate``    partition an instance and simulate it, reporting misses
``experiment``  run an E1–E23 evaluation experiment and print its tables
``constants``   verify / re-optimize the proof constants
``serve``       run the feasibility-query HTTP service (repro.service);
                ``--workers N`` runs the sharded multi-process front end
``loadgen``     drive load at a running service and report RPS/latency
``fuzz``        differential-fuzz the oracle invariant lattice (repro.oracle)
``lint``        run the reproducibility linter (repro.lint, rules REP001-REP006)
``list``        list available experiments
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

import numpy as np

from . import __version__
from .core import constants as C
from .core.feasibility import feasibility_test
from .core.partition import first_fit_partition
from .experiments import all_experiments, get_experiment
from .io_.serialize import (
    load_json,
    platform_from_dict,
    platform_to_dict,
    save_json,
    taskset_from_dict,
    taskset_to_dict,
)
from .io_.tables import write_csv
from .sim.multiprocessor import simulate_partitioned
from .workloads.builder import generate_taskset
from .workloads.platforms import geometric_platform

__all__ = ["main", "build_parser"]


def _jobs_arg(value: str) -> int:
    jobs = int(value)
    if jobs < 0:
        raise argparse.ArgumentTypeError(f"jobs must be >= 0, got {jobs}")
    return jobs


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Partitioned feasibility tests for sporadic tasks on "
            "heterogeneous machines (Ahuja, Lu, Moseley — IPPS 2016)"
        ),
    )
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("test", help="run a theorem feasibility test on a JSON instance")
    p.add_argument("instance", type=Path, help="JSON with 'taskset' and 'platform'")
    p.add_argument("--scheduler", choices=["edf", "rms"], default="edf")
    p.add_argument("--adversary", choices=["partitioned", "any"], default="partitioned")
    p.add_argument("--alpha", type=float, default=None, help="override speed augmentation")
    p.add_argument(
        "--json",
        action="store_true",
        help="emit the verdict as JSON (the same report schema repro.service serves)",
    )
    p.add_argument(
        "--backend",
        choices=["scalar", "kernel", "numpy"],
        default=None,
        help=(
            "evaluation backend (repro.kernels); verdicts are "
            "bit-identical, the JSON report records the choice"
        ),
    )

    p = sub.add_parser("generate", help="draw a synthetic instance as JSON")
    p.add_argument("output", type=Path)
    p.add_argument("--tasks", type=int, default=16)
    p.add_argument("--machines", type=int, default=4)
    p.add_argument("--ratio", type=float, default=8.0, help="platform s_max/s_min")
    p.add_argument(
        "--stress", type=float, default=0.9, help="total utilization / total speed"
    )
    p.add_argument("--seed", type=int, default=0)

    p = sub.add_parser("simulate", help="partition and simulate an instance")
    p.add_argument("instance", type=Path)
    p.add_argument("--policy", choices=["edf", "rms"], default="edf")
    p.add_argument("--alpha", type=float, default=1.0)
    p.add_argument(
        "--release", choices=["periodic", "sporadic"], default="periodic"
    )
    p.add_argument("--seed", type=int, default=0)

    p = sub.add_parser("experiment", help="run an evaluation experiment (E1-E23)")
    p.add_argument("id", help="experiment id, e.g. e01")
    p.add_argument("--scale", choices=["quick", "full"], default="full")
    p.add_argument("--seed", type=int, default=None)
    p.add_argument("--csv", type=Path, default=None, help="also write rows as CSV")
    p.add_argument(
        "--jobs",
        type=_jobs_arg,
        default=None,
        metavar="N",
        help=(
            "worker processes for campaign trials (0 or omitted: all cores; "
            "1: serial in-process). Results are identical for every value."
        ),
    )
    p.add_argument(
        "--backend",
        choices=["scalar", "kernel", "numpy"],
        default=None,
        help=(
            "batch evaluation backend for experiments with kernel-backed "
            "sweeps (E2/E3/E7/E9/E22); curves are bit-identical"
        ),
    )

    p = sub.add_parser("constants", help="verify / re-optimize the proof constants")
    p.add_argument("--optimize", action="store_true")

    p = sub.add_parser(
        "gantt", help="partition, simulate, and draw an ASCII Gantt chart"
    )
    p.add_argument("instance", type=Path)
    p.add_argument("--policy", choices=["edf", "rms"], default="edf")
    p.add_argument("--alpha", type=float, default=1.0)
    p.add_argument("--machine", type=int, default=None, help="only this machine")
    p.add_argument("--width", type=int, default=72)
    p.add_argument("--horizon", type=float, default=None)

    p = sub.add_parser(
        "slack", help="sensitivity: scaling margin and per-task slacks"
    )
    p.add_argument("instance", type=Path)
    p.add_argument("--test", default="edf", help="admission test name")
    p.add_argument("--alpha", type=float, default=1.0)

    p = sub.add_parser(
        "serve", help="run the feasibility-query HTTP service"
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8080, help="0 picks an ephemeral port")
    p.add_argument(
        "--jobs",
        type=_jobs_arg,
        default=1,
        metavar="N",
        help=(
            "worker processes for /v1/batch (0: all cores; 1: serial "
            "in-process, the default)"
        ),
    )
    p.add_argument(
        "--cache-size",
        type=int,
        default=1024,
        metavar="N",
        help="canonical-instance verdict cache capacity",
    )
    p.add_argument(
        "--backend",
        choices=["scalar", "kernel", "numpy"],
        default=None,
        help=(
            "evaluation backend for cache misses (default: legacy scalar "
            "path); responses gain a 'backend' provenance key"
        ),
    )
    p.add_argument(
        "--workers",
        type=int,
        default=0,
        metavar="N",
        help=(
            "run the sharded multi-process front end with N shard "
            "workers, each owning a private verdict cache (0, the "
            "default: the single-process threaded server)"
        ),
    )
    p.add_argument(
        "--chaos",
        action="store_true",
        help=argparse.SUPPRESS,  # fault-injection task names; tests/drills only
    )
    p.add_argument(
        "--verbose", action="store_true", help="log every request to stderr"
    )

    p = sub.add_parser(
        "loadgen", help="drive load at a running feasibility service"
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument(
        "--port", type=int, default=None,
        help="port of the service under load (required unless --list-profiles)",
    )
    p.add_argument(
        "--profile",
        default="smoke",
        help="workload profile name (see --list-profiles)",
    )
    p.add_argument(
        "--list-profiles",
        action="store_true",
        help="list profiles and exit",
    )
    p.add_argument(
        "--duration", type=float, default=None, metavar="SECONDS",
        help="override the profile's run duration",
    )
    p.add_argument(
        "--concurrency", type=int, default=None, metavar="N",
        help="override the profile's closed-loop client count",
    )
    p.add_argument(
        "--rate", type=float, default=None, metavar="RPS",
        help="override the profile's open-loop arrival rate",
    )
    p.add_argument(
        "--seed", type=int, default=None, help="override the profile's seed"
    )
    p.add_argument(
        "--json",
        type=Path,
        default=None,
        metavar="PATH",
        help="also write the full report as JSON",
    )

    p = sub.add_parser(
        "fuzz",
        help="differential-fuzz the oracle invariant lattice",
        description=(
            "Draw randomized and boundary-adversarial instances, evaluate "
            "them through every oracle pair (first-fit theorem tests, exact "
            "adversaries, LP, service), and check the invariant lattice. "
            "Violations are shrunk to minimal counterexamples and saved as "
            "JSON repro cases. Findings are bit-identical for every --jobs."
        ),
    )
    p.add_argument("--seed", type=int, default=0, help="campaign root seed")
    p.add_argument(
        "--budget", type=int, default=1000, metavar="N", help="number of trials"
    )
    p.add_argument(
        "--jobs",
        type=_jobs_arg,
        default=1,
        metavar="N",
        help="worker processes (0: all cores; 1: serial in-process)",
    )
    p.add_argument(
        "--profile",
        action="append",
        dest="profiles",
        metavar="NAME",
        default=None,
        help="generator profile (repeatable; default: all)",
    )
    p.add_argument(
        "--check",
        action="append",
        dest="checks",
        metavar="NAME",
        default=None,
        help="invariant to check (repeatable; default: the full lattice)",
    )
    p.add_argument(
        "--backend",
        choices=["kernel", "numpy"],
        action="append",
        dest="backends",
        default=None,
        help=(
            "kernel backend the backend-equivalence invariant audits "
            "(repeatable; default: every available one)"
        ),
    )
    p.add_argument(
        "--campaign",
        default="oracle-fuzz",
        metavar="NAME",
        help="campaign name (folded into per-trial seeds)",
    )
    p.add_argument(
        "--out-dir",
        type=Path,
        default=Path("results/counterexamples"),
        metavar="DIR",
        help="where shrunk counterexamples are persisted",
    )
    p.add_argument(
        "--no-shrink",
        action="store_true",
        help="persist violations as found, without delta-debugging",
    )
    p.add_argument(
        "--replay",
        type=Path,
        default=None,
        metavar="JSON",
        help="replay a saved counterexample instead of fuzzing",
    )
    p.add_argument(
        "--self-test",
        action="store_true",
        help=(
            "inject a deliberately broken Liu-Layland bound and verify the "
            "harness catches and shrinks it"
        ),
    )

    p = sub.add_parser(
        "lint",
        help="run the reproducibility linter (rules REP001-REP006)",
        description=(
            "AST-based static analysis for the repository's numerical and "
            "determinism discipline: tolerance-helper comparisons, seeded "
            "randomness, monotonic clocks, compensated accumulation, "
            "ordered iteration, and service lock discipline. See "
            "docs/lint.md for the rule catalogue."
        ),
    )
    from .lint.cli import add_lint_arguments

    add_lint_arguments(p)

    sub.add_parser("list", help="list available experiments")
    return parser


def _load_instance(path: Path):
    data = load_json(path)
    return taskset_from_dict(data["taskset"]), platform_from_dict(data["platform"])


def _cmd_test(args: argparse.Namespace) -> int:
    taskset, platform = _load_instance(args.instance)
    if args.backend is None:
        report = feasibility_test(
            taskset, platform, args.scheduler, args.adversary, alpha=args.alpha
        )
    else:
        from .kernels import test_feasibility_batch

        report = test_feasibility_batch(
            [(taskset, platform)],
            args.scheduler,
            args.adversary,
            alpha=args.alpha,
            backend=args.backend,
        )[0]
    if args.json:
        import json

        from .io_.serialize import report_to_dict

        print(
            json.dumps(
                report_to_dict(report, backend=args.backend),
                indent=2,
                sort_keys=True,
            )
        )
        return 0 if report.accepted else 1
    print(f"verdict: {'ACCEPTED' if report.accepted else 'REJECTED'}")
    print(f"alpha: {report.alpha:g}  (theorem {report.theorem})")
    print(report.guarantee)
    if report.accepted:
        for j, idxs in enumerate(report.partition.machine_tasks):
            print(
                f"  machine {j} (speed {platform[j].speed:g}): tasks {list(idxs)} "
                f"load {report.partition.loads[j]:.4f}"
            )
    else:
        cert = report.certificate
        assert cert is not None
        print(
            f"  failing utilization w_n={cert.w_n:.4f}; prefix utilization "
            f"{cert.prefix_utilization:.4f} vs eligible capacity "
            f"{cert.eligible_capacity:.4f}"
            + ("  [certified]" if cert.certifies else "")
        )
    return 0 if report.accepted else 1


def _cmd_generate(args: argparse.Namespace) -> int:
    rng = np.random.default_rng(args.seed)
    platform = geometric_platform(args.machines, args.ratio)
    taskset = generate_taskset(
        rng,
        args.tasks,
        args.stress * platform.total_speed,
        u_max=platform.fastest_speed,
    )
    save_json(
        args.output,
        {"taskset": taskset_to_dict(taskset), "platform": platform_to_dict(platform)},
    )
    print(
        f"wrote {args.output}: n={args.tasks} tasks "
        f"(U={taskset.total_utilization:.3f}), m={args.machines} machines "
        f"(S={platform.total_speed:.3f})"
    )
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    taskset, platform = _load_instance(args.instance)
    test = "edf" if args.policy == "edf" else "rms-ll"
    result = first_fit_partition(taskset, platform, test, alpha=args.alpha)
    if not result.success:
        print(
            f"first-fit failed at alpha={args.alpha:g} "
            f"(task {result.failed_task}); nothing to simulate"
        )
        return 1
    rng = np.random.default_rng(args.seed)
    sim = simulate_partitioned(
        taskset,
        platform,
        result,
        args.policy,
        alpha=args.alpha,
        release=args.release,
        rng=rng,
    )
    print(
        f"simulated {sim.total_jobs} jobs across {len(platform)} machines "
        f"at alpha={args.alpha:g} ({args.release} release)"
    )
    print(f"deadline misses: {sim.total_misses}")
    return 0 if not sim.any_miss else 1


def _cmd_experiment(args: argparse.Namespace) -> int:
    import inspect

    from .runner import telemetry

    fn = get_experiment(args.id)
    kwargs = {"scale": args.scale}
    if args.seed is not None:
        kwargs["seed"] = args.seed
    params = inspect.signature(fn).parameters
    accepts_jobs = "jobs" in params
    if accepts_jobs:
        # None (flag omitted) -> 0 -> resolve to all cores inside the runner.
        kwargs["jobs"] = args.jobs if args.jobs is not None else 0
    elif args.jobs not in (None, 1):
        print(
            f"note: {args.id} has no campaign fan-out; --jobs ignored",
            file=sys.stderr,
        )
    if "backend" in params:
        kwargs["backend"] = args.backend
    elif args.backend is not None:
        print(
            f"note: {args.id} has no kernel-backed sweep; --backend ignored",
            file=sys.stderr,
        )
    with telemetry() as tele:
        result = fn(**kwargs)
    print(result.render())
    if accepts_jobs and tele.runs:
        # Throughput report goes to stderr so stdout stays byte-identical
        # across --jobs values (and clean for redirection into files).
        print(tele.render(), file=sys.stderr)
    if args.csv is not None:
        write_csv(args.csv, result.rows)
        print(f"\nrows written to {args.csv}")
    return 0


def _cmd_constants(args: argparse.Namespace) -> int:
    for label, pc, sched in (
        ("EDF (Theorem I.3)", C.EDF_LP_CONSTANTS, "edf"),
        ("RMS (Theorem I.4)", C.RMS_LP_CONSTANTS, "rms"),
    ):
        conds = C.conditions(pc, sched)  # type: ignore[arg-type]
        ok = C.constants_valid(pc, sched)  # type: ignore[arg-type]
        print(f"{label}: alpha={pc.alpha}  " + "  ".join(
            f"{k}={v:.6f}" for k, v in conds.items()
        ) + f"  valid={ok}")
    if args.optimize:
        for sched in ("edf", "rms"):
            alpha, pc = C.minimal_alpha(sched)  # type: ignore[arg-type]
            print(
                f"re-optimized {sched}: alpha={alpha:.4f} "
                f"(c_s={pc.c_s:.3f}, c_f={pc.c_f:.3f}, "
                f"f_w={pc.f_w:.3f}, f_f={pc.f_f:.4f})"
            )
    return 0


def _cmd_gantt(args: argparse.Namespace) -> int:
    from .sim.gantt import render_gantt

    taskset, platform = _load_instance(args.instance)
    test = "edf" if args.policy == "edf" else "rms-ll"
    result = first_fit_partition(taskset, platform, test, alpha=args.alpha)
    if not result.success:
        print(f"first-fit failed at alpha={args.alpha:g}; nothing to draw")
        return 1
    sim = simulate_partitioned(
        taskset,
        platform,
        result,
        args.policy,
        alpha=args.alpha,
        horizon=args.horizon,
    )
    machines = (
        [args.machine] if args.machine is not None else range(len(platform))
    )
    for j in machines:
        trace = sim.traces[j]
        print(f"machine {j} (speed {platform[j].speed:g} x {args.alpha:g}):")
        if trace.jobs:
            print(render_gantt(trace, taskset.tasks, width=args.width))
        else:
            print("  (idle)")
        print()
    return 0


def _cmd_slack(args: argparse.Namespace) -> int:
    from .analysis.sensitivity import (
        critical_tasks,
        ff_acceptance,
        system_scaling_margin,
    )

    taskset, platform = _load_instance(args.instance)
    accept = ff_acceptance(platform, args.test, args.alpha)
    if not accept(taskset):
        print(
            f"instance rejected by {args.test} at alpha={args.alpha:g}; "
            "no margin to report"
        )
        return 1
    margin = system_scaling_margin(taskset, accept)
    print(
        f"system scaling margin: {margin:.4f} "
        f"(every WCET can grow {100 * (margin - 1):.1f}%)"
    )
    print("per-task slack (most critical first):")
    for entry in critical_tasks(taskset, accept):
        print(f"  {entry.name:>12s}  x{entry.slack:.3f}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    if args.workers > 0:
        from .service.frontend import serve_sharded

        # Shard workers are serial by design (parallelism comes from
        # the worker pool itself), so --jobs does not apply here.
        return serve_sharded(
            args.host,
            args.port,
            workers=args.workers,
            cache_size=args.cache_size,
            backend=args.backend,
            chaos=args.chaos,
            quiet=not args.verbose,
        )
    from .service.server import serve

    return serve(
        args.host,
        args.port,
        jobs=args.jobs,
        cache_size=args.cache_size,
        backend=args.backend,
        quiet=not args.verbose,
    )


def _cmd_loadgen(args: argparse.Namespace) -> int:
    from .loadgen import PROFILES, run_load

    if args.list_profiles:
        for profile in PROFILES.values():
            print(f"{profile.name:>12s}  [{profile.mode}] {profile.description}")
        return 0
    if args.port is None:
        print("error: --port is required (or use --list-profiles)", file=sys.stderr)
        return 2
    profile = PROFILES.get(args.profile)
    if profile is None:
        known = ", ".join(sorted(PROFILES))
        print(f"error: unknown profile {args.profile!r}; known: {known}",
              file=sys.stderr)
        return 2
    profile = profile.with_overrides(
        duration=args.duration,
        concurrency=args.concurrency,
        rate=args.rate,
        seed=args.seed,
    )
    report = run_load(args.host, args.port, profile)
    print(report.summary())
    if args.json is not None:
        args.json.write_text(
            json.dumps(report.as_dict(), indent=2, sort_keys=True) + "\n"
        )
        print(f"report written to {args.json}")
    return 0 if report.errors == 0 else 1


def _cmd_fuzz(args: argparse.Namespace) -> int:
    from .oracle import replay_counterexample, run_fuzz, self_test

    if args.replay is not None:
        violations = replay_counterexample(args.replay)
        if violations:
            print(f"REPRODUCED: {args.replay}")
            for v in violations:
                print(f"  [{v.invariant}] {v.detail}")
            return 1
        print(f"no longer reproduces (fixed): {args.replay}")
        return 0
    if args.self_test:
        result = self_test(seed=args.seed)
        print(result.summary())
        return 0 if result.ok else 1
    report = run_fuzz(
        seed=args.seed,
        budget=args.budget,
        jobs=args.jobs,
        profiles=args.profiles,
        checks=args.checks,
        backends=args.backends,
        shrink=not args.no_shrink,
        out_dir=args.out_dir,
        campaign_name=args.campaign,
    )
    print(report.summary())
    return 0 if report.ok else 1


def _cmd_lint(args: argparse.Namespace) -> int:
    from .lint.cli import run_lint

    return run_lint(args)


def _cmd_list(_: argparse.Namespace) -> int:
    for eid, title in all_experiments().items():
        print(f"{eid}  {title}")
    return 0


_HANDLERS = {
    "test": _cmd_test,
    "generate": _cmd_generate,
    "simulate": _cmd_simulate,
    "experiment": _cmd_experiment,
    "constants": _cmd_constants,
    "gantt": _cmd_gantt,
    "slack": _cmd_slack,
    "serve": _cmd_serve,
    "loadgen": _cmd_loadgen,
    "fuzz": _cmd_fuzz,
    "lint": _cmd_lint,
    "list": _cmd_list,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return _HANDLERS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
