"""E16 / Table 9 — migration vs partitioning, executed.

The paper's two adversary classes differ by migration.  This experiment
makes the difference operational by *running* schedules (synchronous
periodic releases to the hyperperiod):

* partitioned first-fit EDF (the paper's algorithm, alpha = 1);
* global EDF with free migration (fastest-machine-first);
* the LP oracle (what an ideal migratory scheduler could do).

Three instance families expose the three regimes: random near-capacity
sets, Dhall-style (m light + one heavy, global EDF's classic failure),
and chunky thirds (three u~2/3 tasks per two machines — partitioned-
infeasible, LP-feasible, and *also* beyond global EDF, showing the LP
adversary is strictly stronger than any concrete policy we run).

Caveat: global-EDF "clean" means no miss under synchronous periodic
release — a demonstration, not a certificate (synchronous release is not
necessarily global EDF's worst case).
"""

from __future__ import annotations

import math

import numpy as np

from ..core.lp import lp_feasible
from ..core.model import Platform, Task, TaskSet
from ..core.partition import first_fit_partition
from ..sim.global_sched import simulate_global
from ..sim.jobs import PeriodicSource
from ..sim.multiprocessor import simulate_partitioned
from ..workloads.builder import generate_taskset
from .base import DEFAULT_SEED, ExperimentResult, Scale, register


def _global_clean(taskset: TaskSet, speeds: list[float]) -> bool:
    tasks = list(taskset)
    try:
        horizon = float(math.lcm(*(int(round(t.period)) for t in tasks)))
    except ValueError:
        horizon = 40.0
    horizon = min(horizon, 5000.0)
    sources = [PeriodicSource(t, i) for i, t in enumerate(tasks)]
    trace = simulate_global(tasks, speeds, "edf", sources, horizon)
    return not trace.any_miss


def _partitioned_clean(taskset: TaskSet, platform: Platform) -> bool:
    result = first_fit_partition(taskset, platform, "edf")
    if not result.success:
        return False
    sim = simulate_partitioned(
        taskset, platform, result, "edf", stop_on_first_miss=True
    )
    return not sim.any_miss


def _random_family(rng: np.random.Generator, count: int) -> list[TaskSet]:
    out = []
    for _ in range(count):
        stress = float(rng.uniform(0.85, 1.0))
        out.append(
            generate_taskset(
                rng,
                6,
                stress * 2.0,
                u_max=0.95,
                p_min=4,
                p_max=16,
                integer_periods=True,
            )
        )
    return out


def _dhall_family(rng: np.random.Generator, count: int) -> list[TaskSet]:
    out = []
    for _ in range(count):
        eps = float(rng.uniform(0.02, 0.12))
        out.append(
            TaskSet(
                [
                    Task(1.0, 10.0, name="light0"),
                    Task(1.0, 10.0, name="light1"),
                    Task(12.0 * (1 - eps), 12.0, name="heavy"),
                ]
            )
        )
    return out


def _thirds_family(rng: np.random.Generator, count: int) -> list[TaskSet]:
    out = []
    for _ in range(count):
        u = float(rng.uniform(0.55, 0.66))
        p = float(rng.integers(9, 16))
        out.append(TaskSet([Task.from_utilization(u, p) for _ in range(3)]))
    return out


@register("e16", "Migration vs partitioning, executed (Table 9)")
def run(seed: int = DEFAULT_SEED, scale: Scale = "full") -> ExperimentResult:
    rng = np.random.default_rng(seed)
    count = 15 if scale == "quick" else 100
    platform = Platform.from_speeds([1.0, 1.0])
    speeds = [1.0, 1.0]
    rows = []
    for family, builder in (
        ("random near-capacity", _random_family),
        ("Dhall (2 light + heavy)", _dhall_family),
        ("chunky thirds (3 x u~0.6)", _thirds_family),
    ):
        instances = builder(rng, count)
        part = sum(_partitioned_clean(ts, platform) for ts in instances)
        glob = sum(_global_clean(ts, speeds) for ts in instances)
        lp = sum(lp_feasible(ts, platform) for ts in instances)
        rows.append(
            {
                "family": family,
                "instances": len(instances),
                "partitioned FF-EDF clean": part / count,
                "global EDF clean": glob / count,
                "LP feasible": lp / count,
            }
        )
    return ExperimentResult(
        experiment_id="e16",
        title="Migration vs partitioning, executed (Table 9)",
        rows=rows,
        notes=(
            "Two unit machines; synchronous periodic release to the "
            "hyperperiod. Dhall instances: partitioning wins (global EDF "
            "strands the heavy task). Chunky thirds: the LP is feasible "
            "but BOTH concrete schedulers fail — partitioning for packing "
            "reasons, global EDF for non-optimality — illustrating why the "
            "paper's strongest adversary is the LP, not a policy."
        ),
    )
