"""E7 / Figure 5 — effect of platform heterogeneity.

Sweeps the speed spread ``s_max/s_min`` at *constant aggregate capacity*
(the §I motivation: few fast + many slow cores vs uniform cores) and
measures (a) first-fit EDF acceptance at a fixed utilization and (b) the
mean empirical speedup factor on partitioned-feasible instances.

Expected shape: higher heterogeneity hurts the alpha=1 acceptance (large
tasks only fit the fast cores, which saturate) while alpha* stays well
under the Theorem I.1 bound of 2 throughout.
"""

from __future__ import annotations

from ..analysis.acceptance import acceptance_sweep, ff_tester, lp_tester
from ..analysis.speedup import empirical_speedup_study
from ..workloads.platforms import geometric_platform, normalized
from .base import DEFAULT_SEED, ExperimentResult, Scale, register

RATIOS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0)


@register("e07", "Heterogeneity sweep at constant capacity (Fig. 5)")
def run(
    seed: int = DEFAULT_SEED,
    scale: Scale = "full",
    jobs: int | None = 1,
    backend: str | None = None,
) -> ExperimentResult:
    samples = 25 if scale == "quick" else 200
    m = 6
    n_tasks = 8  # chunky tasks: mean utilization ~ 0.7 of a machine
    stress = 0.92
    rows = []
    for ratio in RATIOS:
        platform = normalized(geometric_platform(m, ratio), float(m))
        curve = acceptance_sweep(
            seed,
            platform,
            {"ff": ff_tester("edf", 1.0), "lp": lp_tester()},
            n_tasks=n_tasks,
            normalized_utilizations=(stress,),
            samples=samples,
            jobs=jobs,
            name=f"e07/accept/{ratio:g}",
            backend=backend,
        )
        study = empirical_speedup_study(
            seed,
            platform,
            scheduler="edf",
            adversary="partitioned",
            samples=max(10, samples // 2),
            load=0.98,
            tasks_per_machine=2,
            jobs=jobs,
            name=f"e07/alpha/{ratio:g}",
        )
        rows.append(
            {
                "s_max/s_min": ratio,
                f"FF-EDF accept @U/S={stress}": curve.rates["ff"][0],
                f"LP accept @U/S={stress}": curve.rates["lp"][0],
                "mean alpha*": study.summary.mean,
                "max alpha*": study.summary.maximum,
            }
        )
    return ExperimentResult(
        experiment_id="e07",
        title="Heterogeneity sweep at constant capacity (Fig. 5)",
        rows=rows,
        notes=(
            f"m={m} machines, geometric speeds, total speed held at {m}; "
            f"n={n_tasks} chunky tasks (mean utilization ~{stress * m / n_tasks:.2f}); "
            f"{samples} samples per point. alpha* stays below the Theorem "
            "I.1 bound of 2 at every spread."
        ),
    )
