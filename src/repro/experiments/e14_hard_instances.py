"""E14 / Table 7 — adversarial lower bounds on the algorithm's ratio.

Random instances need speedups barely above 1 (E4/E5); the theorems
price adversarial structure.  This experiment *searches* for that
structure (restart hill-climbing over witnessed partitioned-feasible
instances, maximizing first-fit's minimum augmentation) and reports the
hardest instances found — empirical lower bounds on the algorithm's true
approximation factor, bracketing it together with the theorems' upper
bounds (2 for EDF, 1+sqrt2 for RMS).

An extension beyond the paper: the paper proves upper bounds only; the
search quantifies how much of the remaining gap is real.
"""

from __future__ import annotations

import numpy as np

from ..analysis.hard_instances import search_hard_instance
from ..analysis.speedup import empirical_speedup_study
from ..core.constants import ALPHA_EDF_PARTITIONED, ALPHA_RMS_PARTITIONED
from ..workloads.platforms import geometric_platform
from .base import DEFAULT_SEED, ExperimentResult, Scale, register


@register("e14", "Adversarial lower bounds via hard-instance search (Table 7)")
def run(seed: int = DEFAULT_SEED, scale: Scale = "full") -> ExperimentResult:
    rng = np.random.default_rng(seed)
    platform = geometric_platform(4, 8.0)
    if scale == "quick":
        iterations, restarts, random_samples = 40, 2, 20
    else:
        iterations, restarts, random_samples = 300, 6, 150
    bounds = {"edf": ALPHA_EDF_PARTITIONED, "rms": ALPHA_RMS_PARTITIONED}
    rows = []
    for scheduler in ("edf", "rms"):
        random_study = empirical_speedup_study(
            rng,
            platform,
            scheduler=scheduler,  # type: ignore[arg-type]
            adversary="partitioned",
            samples=random_samples,
            load=1.0,
        )
        hard = search_hard_instance(
            rng,
            platform,
            scheduler,  # type: ignore[arg-type]
            iterations=iterations,
            restarts=restarts,
        )
        rows.append(
            {
                "scheduler": scheduler,
                "upper bound (theorem)": bounds[scheduler],
                "random max alpha*": random_study.summary.maximum,
                "searched max alpha*": hard.alpha,
                "search gain": hard.alpha - random_study.summary.maximum,
                "remaining gap to bound": bounds[scheduler] - hard.alpha,
                "hard instance n": len(hard.taskset),
            }
        )
    return ExperimentResult(
        experiment_id="e14",
        title="Adversarial lower bounds via hard-instance search (Table 7)",
        rows=rows,
        notes=(
            f"Platform: 4 machines, geometric ratio 8; hill-climb with "
            f"{restarts} restarts x {iterations} mutations over witnessed "
            "partitioned-feasible instances (per-machine fill 1.0). "
            "'searched max alpha*' is a constructive lower bound on "
            "first-fit's approximation factor; the theorems are upper "
            "bounds. At full scale the search typically beats random "
            "sampling; the remaining gap quantifies how far the proved "
            "worst case sits from what even directed search finds."
        ),
    )
