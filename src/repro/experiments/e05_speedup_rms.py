"""E5 / Figure 4 — empirical speedup-factor distribution, RMS.

RMS analogue of E4: Theorem I.2 bounds the partitioned-adversary sample
by 1+sqrt2 ~ 2.414, Theorem I.4 bounds the LP-adversary sample by 3.34.
RMS's Liu–Layland admission inflates alpha* relative to EDF by up to
1/ln2 ~ 1.44 even on friendly instances — visible in the medians.
"""

from __future__ import annotations

from ..analysis.speedup import empirical_speedup_study
from ..workloads.platforms import geometric_platform
from .base import DEFAULT_SEED, ExperimentResult, Scale, register
from .e04_speedup_edf import _study_rows


@register("e05", "Empirical speedup factor, RMS (Fig. 4)")
def run(
    seed: int = DEFAULT_SEED, scale: Scale = "full", jobs: int | None = 1
) -> ExperimentResult:
    platform = geometric_platform(4, 8.0)
    samples = 20 if scale == "quick" else 200
    studies = [
        empirical_speedup_study(
            seed,
            platform,
            scheduler="rms",
            adversary="partitioned",
            samples=samples,
            load=0.99,
            jobs=jobs,
            name="e05/rms/partitioned",
        ),
        empirical_speedup_study(
            seed,
            platform,
            scheduler="rms",
            adversary="any",
            samples=max(10, samples // 2),
            load=0.98,
            n_tasks=2 * len(platform),
            jobs=jobs,
            name="e05/rms/any",
        ),
    ]
    rows, cdf_rows = _study_rows(studies)
    return ExperimentResult(
        experiment_id="e05",
        title="Empirical speedup factor, RMS (Fig. 4)",
        rows=rows,
        extra_tables={"alpha* CDF quantiles": cdf_rows},
        notes=(
            "Same protocol as E4 with RMS Liu-Layland admission. Measured "
            "alpha* sits above the EDF values of E4 (the LL-bound penalty) "
            "but below the 2.414 / 3.34 theorem bounds."
        ),
    )
