"""E13 / Table 6 — end-to-end simulation cross-validation.

Closes the loop between the analytical tests and actual execution:

* every accepted partition, simulated to the hyperperiod on the
  alpha-augmented platform under synchronous periodic release (the
  critical instant), must show **zero** deadline misses — for both EDF
  and RMS admission (Theorems II.2/II.3 made operational);
* sporadic releases (random extra gaps) are only easier: zero misses;
* negative control: deliberately overloaded machines must miss.

Every trace passes the independent validators before counting.
"""

from __future__ import annotations

import numpy as np

from ..core.model import Task, TaskSet
from ..core.partition import first_fit_partition
from ..sim.multiprocessor import simulate_partitioned
from ..sim.validators import validate_all
from ..workloads.builder import partitioned_feasible_instance
from ..workloads.platforms import geometric_platform
from .base import DEFAULT_SEED, ExperimentResult, Scale, register


@register("e13", "Simulation cross-validation of accepted partitions (Table 6)")
def run(seed: int = DEFAULT_SEED, scale: Scale = "full") -> ExperimentResult:
    rng = np.random.default_rng(seed)
    platform = geometric_platform(3, 4.0)
    instances = 10 if scale == "quick" else 60
    rows = []
    for policy, test, alpha in (
        ("edf", "edf", 1.0),
        ("edf", "edf", 2.0),
        ("rms", "rms-ll", 1.0),
        ("rms", "rms-ll", 2.4142135623730951),
    ):
        accepted = jobs = misses = validator_errors = 0
        for _ in range(instances):
            # load 0.65: below the 3-task Liu-Layland bound (~0.78), so the
            # RMS alpha=1 row also exercises accepted partitions
            inst = partitioned_feasible_instance(
                rng,
                platform,
                load=0.65,
                tasks_per_machine=3,
                integer_periods=True,
                p_min=4,
                p_max=24,
            )
            result = first_fit_partition(inst.taskset, platform, test, alpha=alpha)
            if not result.success:
                continue
            accepted += 1
            for release in ("periodic", "sporadic"):
                sim = simulate_partitioned(
                    inst.taskset,
                    platform,
                    result,
                    policy,  # type: ignore[arg-type]
                    alpha=alpha,
                    release=release,  # type: ignore[arg-type]
                    rng=rng,
                )
                jobs += sim.total_jobs
                misses += sim.total_misses
                for trace in sim.traces:
                    validator_errors += len(validate_all(trace, inst.taskset.tasks))
        rows.append(
            {
                "policy": policy,
                "admission": test,
                "alpha": alpha,
                "accepted": f"{accepted}/{instances}",
                "jobs simulated": jobs,
                "deadline misses": misses,
                "validator errors": validator_errors,
            }
        )

    # Negative control: a machine loaded beyond capacity must miss.
    overload = TaskSet([Task(6, 10, "hog"), Task(4, 8, "hog2")])  # U = 1.1
    sim = simulate_partitioned(
        overload,
        geometric_platform(1, 1.0),
        [0, 0],
        "edf",
        horizon=80.0,
    )
    rows.append(
        {
            "policy": "edf",
            "admission": "(overload control)",
            "alpha": 1.0,
            "accepted": "-",
            "jobs simulated": sim.total_jobs,
            "deadline misses": sim.total_misses,
            "validator errors": sum(
                len(validate_all(t, overload.tasks)) for t in sim.traces
            ),
        }
    )
    return ExperimentResult(
        experiment_id="e13",
        title="Simulation cross-validation of accepted partitions (Table 6)",
        rows=rows,
        notes=(
            "Integer periods, per-machine hyperperiod horizons; synchronous "
            "periodic + sporadic releases. Expected: zero misses and zero "
            "validator errors on every accepted row; misses > 0 on the "
            "overload control."
        ),
    )
