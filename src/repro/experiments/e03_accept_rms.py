"""E3 / Figure 2 — RMS acceptance ratio vs normalized utilization.

Same sweep as E2 for the RMS side, additionally quantifying the pessimism
of the paper's Liu–Layland admission (Theorem II.3) against the
hyperbolic bound and exact response-time analysis on each machine, and
against the exact partitioned-RMS adversary (RTA ground truth).

Expected shape: RTA >= hyperbolic >= LL pointwise (strictly ordered
sufficiency), all below the EDF curves of E2 at equal utilization.
"""

from __future__ import annotations

from ..analysis.acceptance import (
    acceptance_sweep,
    exact_rms_tester,
    ff_tester,
)
from ..workloads.platforms import geometric_platform
from .base import DEFAULT_SEED, ExperimentResult, Scale, register

GRID = (0.40, 0.50, 0.60, 0.65, 0.70, 0.75, 0.80, 0.90, 1.0)


@register("e03", "RMS acceptance ratio vs normalized utilization (Fig. 2)")
def run(
    seed: int = DEFAULT_SEED,
    scale: Scale = "full",
    jobs: int | None = 1,
    backend: str | None = None,
) -> ExperimentResult:
    platform = geometric_platform(4, 8.0)
    samples = 30 if scale == "quick" else 300
    curve = acceptance_sweep(
        seed,
        platform,
        {
            "FF-RMS-LL(a=1)": ff_tester("rms-ll", 1.0),
            "FF-RMS-hyp(a=1)": ff_tester("rms-hyperbolic", 1.0),
            "FF-RMS-RTA(a=1)": ff_tester("rms-rta", 1.0),
            "FF-RMS-LL(a=2.41)": ff_tester("rms-ll", 2.4142135623730951),
            "exact-partitioned-RMS": exact_rms_tester(),
        },
        n_tasks=16,
        normalized_utilizations=GRID,
        samples=samples,
        jobs=jobs,
        name="e03/accept-rms",
        backend=backend,
    )
    return ExperimentResult(
        experiment_id="e03",
        title="RMS acceptance ratio vs normalized utilization (Fig. 2)",
        rows=curve.as_rows(),
        notes=(
            f"Platform: 4 machines, geometric speeds ratio 8; n=16 tasks; "
            f"{samples} task sets per point. Admission ordering LL <= "
            "hyperbolic <= RTA quantifies the pessimism of the paper's "
            "Liu-Layland choice; FF-RMS-LL(a=2.41) is the Theorem I.2 "
            "acceptance band."
        ),
    )
