"""E23 — empirical speedup factors on the deadline-ratio axis.

Protocol of E4/E5 extended to constrained deadlines: generate instances
*certified* partitioned-EDF feasible at speed 1 (density witness, see
:func:`repro.workloads.builder.constrained_feasible_instance`), then
measure the minimum augmentation at which each constrained-deadline
tester accepts — the exact QPA admission under the paper's §III
first-fit, and the Han–Zhao and Chen baselines in their native
deadline-monotonic shape.  The related-work speedup bounds cap the
baselines' columns (2.5556 for Han–Zhao's linearized dbf, 2.84306 for
Chen's FBB-FFD test); the measured max/mean per deadline-ratio band are
the pinned regression numbers, the analogue of the paper's
2 / 2.41 / 2.98 / 3.34 table.
"""

from __future__ import annotations

import functools
import math

from ..analysis.ratio import min_alpha_first_fit
from ..baselines.chen_fp_dbf import CHEN_DM_SPEEDUP, ChenFPAdmissionTest
from ..baselines.han_zhao import HAN_ZHAO_SPEEDUP, HanZhaoAdmissionTest
from ..core.constants import ALPHA_EDF_PARTITIONED
from ..core.model import Platform
from ..runner import run_trials
from ..workloads.builder import constrained_feasible_instance
from ..workloads.campaigns import Campaign, Trial, campaign_seed
from ..workloads.platforms import geometric_platform
from .base import DEFAULT_SEED, ExperimentResult, Scale, register

#: deadline-ratio bands: ratios drawn uniform on [dr_min, 1]
DR_MINS = (1.0, 0.8, 0.6, 0.4)

#: tester name -> (admission test factory, first-fit task order, bound)
TESTERS = {
    "FF-QPA": ("edf-dbf", "util-desc", ALPHA_EDF_PARTITIONED),
    "Han-Zhao": (HanZhaoAdmissionTest, "deadline-asc", HAN_ZHAO_SPEEDUP),
    "Chen-DM": (ChenFPAdmissionTest, "deadline-asc", CHEN_DM_SPEEDUP),
}


def _speedup_trial(
    trial: Trial,
    *,
    platform: Platform,
    load: float,
    tasks_per_machine: int,
    tol: float,
) -> dict[str, float]:
    """One sample: a certified constrained-feasible draw, one min-alpha
    search per tester.  Pure in (trial.seed, trial.params)."""
    rng = trial.rng()
    dr_min = trial.params["dr_min"]
    inst = constrained_feasible_instance(
        rng,
        platform,
        load=load,
        tasks_per_machine=tasks_per_machine,
        dr_min=dr_min,
        dr_max=1.0,
    )
    out: dict[str, float] = {}
    for name, (test, order, _) in TESTERS.items():
        resolved = test if isinstance(test, str) else test()
        out[name] = float(
            min_alpha_first_fit(
                inst.taskset,
                platform,
                resolved,
                tol=tol,
                task_order=order,  # type: ignore[arg-type]
            ).alpha
        )
    return out


@register("e23", "Empirical speedup factors vs deadline ratio")
def run(
    seed: int = DEFAULT_SEED,
    scale: Scale = "full",
    jobs: int | None = 1,
    backend: str | None = None,
) -> ExperimentResult:
    del backend  # the min-alpha search is inherently scalar
    platform = geometric_platform(4, 8.0)
    samples = 12 if scale == "quick" else 100
    campaign = Campaign(
        name="e23/speedup-deadline",
        grid={"dr_min": DR_MINS},
        replications=samples,
        base_seed=campaign_seed(seed),
    )
    fn = functools.partial(
        _speedup_trial,
        platform=platform,
        load=0.95,
        tasks_per_machine=4,
        tol=1e-3,
    )
    run_ = run_trials(fn, campaign, jobs=jobs, label="e23/speedup-deadline")
    records = iter(run_.records)
    rows = []
    for dr_min in DR_MINS:
        chunk = [next(records) for _ in range(samples)]
        for name, (_, _, bound) in TESTERS.items():
            alphas = [r[name] for r in chunk]
            rows.append(
                {
                    "dr_min": dr_min,
                    "tester": name,
                    "max alpha": max(alphas),
                    "mean alpha": math.fsum(alphas) / len(alphas),
                    "bound": bound,
                }
            )
    return ExperimentResult(
        experiment_id="e23",
        title="Empirical speedup factors vs deadline ratio",
        rows=rows,
        notes=(
            f"Platform: 4 machines, geometric speeds ratio 8; 4 tasks per "
            f"machine, per-machine density 0.95 (UUniFast witness), "
            f"deadline ratios uniform on [dr_min, 1]; {samples} instances "
            "per band, min-alpha search tol 1e-3. Bounds: 2 is Theorem "
            "I.1's implicit-deadline reference for first-fit with exact "
            f"admission; {HAN_ZHAO_SPEEDUP} is Han-Zhao's factor for the "
            f"linearized dbf under DM first-fit; {CHEN_DM_SPEEDUP} is "
            "Chen's factor for the FBB-FFD linear test. Instances are "
            "feasible at speed 1 by the density certificate, so every "
            "alpha here is an empirical speedup sample."
        ),
    )
