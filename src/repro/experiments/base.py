"""Experiment framework: results, scales, and the registry.

Each evaluation artifact (DESIGN.md §3, E1–E17) is one module exposing
``run(seed, scale) -> ExperimentResult``.  ``scale='quick'`` keeps bench
and CI runs in seconds; ``scale='full'`` produces the EXPERIMENTS.md
numbers.  Both scales use deterministic seeds, so every number in the
docs is reproducible with one CLI call.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Literal, Mapping

from ..io_.tables import format_table

__all__ = [
    "Scale",
    "ExperimentResult",
    "result_from_dict",
    "register",
    "get_experiment",
    "all_experiments",
]

Scale = Literal["quick", "full"]

DEFAULT_SEED = 20160523  # IPPS 2016 conference dates


@dataclass(frozen=True)
class ExperimentResult:
    """One experiment's output: identification, table rows, commentary."""

    experiment_id: str
    title: str
    rows: list[dict[str, Any]]
    notes: str = ""
    #: optional named secondary tables (e.g. a CDF alongside a summary)
    extra_tables: Mapping[str, list[dict[str, Any]]] = field(default_factory=dict)

    def render(self, *, precision: int = 4) -> str:
        parts = [
            format_table(
                self.rows,
                title=f"[{self.experiment_id}] {self.title}",
                precision=precision,
            )
        ]
        for name, rows in self.extra_tables.items():
            parts.append("")
            parts.append(format_table(rows, title=name, precision=precision))
        if self.notes:
            parts.append("")
            parts.append(self.notes)
        return "\n".join(parts)

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready archive form (see :func:`result_from_dict`)."""
        return {
            "experiment_id": self.experiment_id,
            "title": self.title,
            "rows": self.rows,
            "notes": self.notes,
            "extra_tables": dict(self.extra_tables),
        }


def result_from_dict(data: Mapping[str, Any]) -> ExperimentResult:
    """Rebuild an archived :class:`ExperimentResult`."""
    return ExperimentResult(
        experiment_id=str(data["experiment_id"]),
        title=str(data["title"]),
        rows=list(data["rows"]),
        notes=str(data.get("notes", "")),
        extra_tables=dict(data.get("extra_tables", {})),
    )


Runner = Callable[..., ExperimentResult]

_REGISTRY: dict[str, tuple[str, Runner]] = {}


def register(experiment_id: str, title: str):
    """Decorator: add a ``run(seed, scale)`` function to the registry."""

    def wrap(fn: Runner) -> Runner:
        if experiment_id in _REGISTRY:
            raise ValueError(f"duplicate experiment id {experiment_id}")
        _REGISTRY[experiment_id] = (title, fn)
        return fn

    return wrap


def get_experiment(experiment_id: str) -> Runner:
    """Runner for one experiment id (e.g. ``'e01'``)."""
    try:
        return _REGISTRY[experiment_id][1]
    except KeyError:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; known: {sorted(_REGISTRY)}"
        ) from None


def all_experiments() -> dict[str, str]:
    """Mapping experiment id -> title."""
    return {eid: title for eid, (title, _) in sorted(_REGISTRY.items())}
