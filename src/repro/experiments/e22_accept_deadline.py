"""E22 — constrained-deadline acceptance across the deadline-ratio axis.

Schedulability curves for the constrained-deadline test family on a
geometric 4-machine platform, swept over the deadline-ratio band
``[dr_min, 1]``: the exact processor-demand admission (``edf-dbf``, the
QPA walk) under the paper's §III first-fit, the Han–Zhao linearized-dbf
baseline and Chen's FBB-FFD linear bound (both in their native
deadline-monotonic shape), and the k=4 approximate dbf.  The
``dr_min=1`` row is the implicit-deadline control where ``edf-dbf``
degenerates to the utilization test.

Expected shape: QPA >= approx(k=4) >= Han–Zhao pointwise (coarser
approximations reject more), Chen's fixed-priority test is the most
conservative, and every curve drops as deadlines tighten (``dr_min``
falls) at fixed utilization — demand concentrates in shorter windows.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.acceptance import acceptance_sweep, ff_tester
from ..baselines.chen_fp_dbf import chen_partition
from ..baselines.han_zhao import han_zhao_partition
from ..core.model import Platform, TaskSet
from ..workloads.platforms import geometric_platform
from .base import DEFAULT_SEED, ExperimentResult, Scale, register

GRID = (0.40, 0.50, 0.60, 0.70, 0.80, 0.90)

#: deadline-ratio bands swept: ratios drawn uniform on [dr_min, 1]
DR_MINS = (1.0, 0.8, 0.6, 0.4)


@dataclass(frozen=True)
class HanZhaoTester:
    """Acceptance predicate for the Han–Zhao DM first-fit baseline."""

    alpha: float = 1.0

    def __call__(self, taskset: TaskSet, platform: Platform) -> bool:
        return han_zhao_partition(taskset, platform, alpha=self.alpha).success


@dataclass(frozen=True)
class ChenTester:
    """Acceptance predicate for Chen's DM first-fit FBB-FFD baseline."""

    alpha: float = 1.0

    def __call__(self, taskset: TaskSet, platform: Platform) -> bool:
        return chen_partition(taskset, platform, alpha=self.alpha).success


@register("e22", "Constrained-deadline acceptance vs deadline ratio")
def run(
    seed: int = DEFAULT_SEED,
    scale: Scale = "full",
    jobs: int | None = 1,
    backend: str | None = None,
) -> ExperimentResult:
    platform = geometric_platform(4, 8.0)
    samples = 40 if scale == "quick" else 400
    rows = []
    for dr_min in DR_MINS:
        curve = acceptance_sweep(
            seed,
            platform,
            {
                "FF-QPA": ff_tester("edf-dbf", 1.0),
                "approx(k=4)": ff_tester("edf-dbf-approx", 1.0),
                "Han-Zhao": HanZhaoTester(),
                "Chen-DM": ChenTester(),
            },
            n_tasks=16,
            normalized_utilizations=GRID,
            samples=samples,
            jobs=jobs,
            name=f"e22/accept-deadline/dr{dr_min}",
            backend=backend,
            dr_dist="implicit" if dr_min == 1.0 else "uniform",
            dr_min=dr_min,
            dr_max=1.0,
        )
        for row in curve.as_rows():
            rows.append({"dr_min": dr_min, **row})
    return ExperimentResult(
        experiment_id="e22",
        title="Constrained-deadline acceptance vs deadline ratio",
        rows=rows,
        notes=(
            f"Platform: 4 machines, geometric speeds ratio 8; n=16 tasks "
            f"(UUniFast), deadline ratios uniform on [dr_min, 1]; {samples} "
            "task sets per point. FF-QPA is the exact processor-demand "
            "admission under the paper's util-desc first-fit; approx(k=4) "
            "its 4-step approximation; Han-Zhao and Chen-DM run in their "
            "native deadline-monotonic shape. dr_min=1.0 is the implicit "
            "control row."
        ),
    )
