"""E1 / Table 1 — theorem constants and proof-inequality verification.

Validates, numerically, every constant the paper states:

* the four theorem alphas (2, 1+sqrt2, 2.98, 3.34),
* the §IV/§V analysis constants and that each proof inequality exceeds 1
  by the paper's stated margins (~1.0005 EDF, ~1.004 RMS),
* that re-optimizing the free constants from scratch recovers the
  paper's headline alphas (the analysis technique's true optimum).
"""

from __future__ import annotations

from ..core import constants as C
from .base import DEFAULT_SEED, ExperimentResult, Scale, register


@register("e01", "Theorem constants and proof-inequality verification")
def run(seed: int = DEFAULT_SEED, scale: Scale = "full") -> ExperimentResult:
    rows: list[dict] = []
    rows.append(
        {
            "theorem": "I.1 (EDF vs partitioned)",
            "alpha": C.ALPHA_EDF_PARTITIONED,
            "paper": 2.0,
        }
    )
    rows.append(
        {
            "theorem": "I.2 (RMS vs partitioned)",
            "alpha": C.ALPHA_RMS_PARTITIONED,
            "paper": 2.41,
        }
    )
    rows.append(
        {
            "theorem": "I.3 (EDF vs any)",
            "alpha": C.ALPHA_EDF_LP,
            "paper": 2.98,
        }
    )
    rows.append(
        {
            "theorem": "I.4 (RMS vs any)",
            "alpha": C.ALPHA_RMS_LP,
            "paper": 3.34,
        }
    )

    cond_rows: list[dict] = []
    for label, pc, scheduler in (
        ("EDF §IV", C.EDF_LP_CONSTANTS, "edf"),
        ("RMS §V", C.RMS_LP_CONSTANTS, "rms"),
    ):
        conds = C.conditions(pc, scheduler)  # type: ignore[arg-type]
        cond_rows.append(
            {
                "analysis": label,
                "c_s": pc.c_s,
                "c_f": pc.c_f,
                "f_w": pc.f_w,
                "f_f": pc.f_f,
                **conds,
                "all > 1": C.constants_valid(pc, scheduler),  # type: ignore[arg-type]
            }
        )

    grid = 80 if scale == "quick" else 200
    opt_rows: list[dict] = []
    for scheduler, paper_alpha in (("edf", 2.98), ("rms", 3.34)):
        alpha, pc = C.minimal_alpha(scheduler, grid=grid)  # type: ignore[arg-type]
        opt_rows.append(
            {
                "scheduler": scheduler,
                "re-optimized alpha": alpha,
                "paper alpha": paper_alpha,
                "c_s*": pc.c_s,
                "c_f*": pc.c_f,
                "f_w*": pc.f_w,
                "f_f*": pc.f_f,
            }
        )

    return ExperimentResult(
        experiment_id="e01",
        title="Theorem constants and proof-inequality verification",
        rows=rows,
        extra_tables={
            "Proof-inequality values (must exceed 1)": cond_rows,
            "Free-constant re-optimization": opt_rows,
        },
        notes=(
            "The re-optimized alphas match the paper's headline values to "
            "its rounding (EDF ~2.98, RMS ~3.33-3.34), with near-identical "
            "optimal constants — confirming the printed constants are the "
            "technique's optimum, not arbitrary choices."
        ),
    )
