"""E11 / Table 5 — agreement with prior work and the PTAS reference.

Head-to-head verdict comparison on small instances where the exact
partitioned adversary provides ground truth:

* our Theorem I.1 test (FF-EDF at alpha=2) vs Andersson-Tovar [2]
  (FF-EDF at alpha=3): identical algorithm, tighter augmentation — the
  new test's rejections are a superset, with zero false rejections of
  partitioned-feasible instances;
* the simplified Hochbaum-Shmoys-style (1+eps) dual-approximation [11]:
  near-exact verdicts at eps=0.25, at orders-of-magnitude higher cost
  (node counts reported), reproducing the paper's practicality argument.

Execution: each sample is one per-trial-seeded :class:`Trial` dispatched
through :func:`repro.runner.run_trials`, so the comparison parallelizes
across samples with tables bit-identical for every ``--jobs`` value.
"""

from __future__ import annotations

import functools
from typing import Any

import numpy as np

from ..baselines.andersson_tovar import andersson_tovar_edf_test
from ..baselines.exact import exact_partitioned_edf_feasible
from ..baselines.ptas import ptas_feasibility_test
from ..core.feasibility import edf_test_vs_partitioned
from ..core.lp import lp_feasible
from ..core.model import Platform
from ..runner import run_trials
from ..workloads.builder import generate_taskset
from ..workloads.campaigns import Campaign, Trial, campaign_seed
from ..workloads.platforms import geometric_platform
from .base import DEFAULT_SEED, ExperimentResult, Scale, register

_TESTS = ("ours(a=2)", "AT[2](a=3)", "PTAS(eps=.25)", "LP(any)", "exact")


def _compare_sample(platform: Platform, trial: Trial) -> dict[str, Any] | None:
    """One sample: every tester's verdict, or None if ground truth is
    undecided within the branch-and-bound node budget."""
    rng = trial.rng()
    stress = rng.uniform(0.8, 1.15)
    taskset = generate_taskset(
        rng, 10, stress * platform.total_speed, u_max=platform.fastest_speed
    )
    truth = exact_partitioned_edf_feasible(taskset, platform)
    if truth is None:
        return None
    ptas = ptas_feasibility_test(taskset, platform, eps=0.25)
    return {
        "truth": bool(truth),
        "nodes": ptas.nodes,
        "verdicts": {
            "ours(a=2)": edf_test_vs_partitioned(taskset, platform).accepted,
            "AT[2](a=3)": andersson_tovar_edf_test(taskset, platform).accepted,
            "PTAS(eps=.25)": ptas.feasible,
            "LP(any)": lp_feasible(taskset, platform),
            "exact": bool(truth),
        },
    }


@register("e11", "Baseline agreement: ours vs Andersson-Tovar vs PTAS (Table 5)")
def run(
    seed: int = DEFAULT_SEED, scale: Scale = "full", jobs: int | None = 1
) -> ExperimentResult:
    platform = geometric_platform(3, 4.0)
    samples = 60 if scale == "quick" else 500
    campaign = Campaign(
        name="e11/baselines",
        grid={"n_tasks": [10]},
        replications=samples,
        base_seed=campaign_seed(seed),
    )
    records = run_trials(
        functools.partial(_compare_sample, platform),
        campaign,
        jobs=jobs,
        label="e11/baselines",
    )

    stats = {name: {"accept": 0, "false_reject": 0} for name in _TESTS}
    ptas_nodes = []
    decided = 0
    for record in records:
        if record is None:
            continue
        decided += 1
        ptas_nodes.append(record["nodes"])
        for name, accepted in record["verdicts"].items():
            if accepted:
                stats[name]["accept"] += 1
            elif record["truth"]:
                # rejected an instance some partition could schedule
                stats[name]["false_reject"] += 1

    rows = []
    for name, s in stats.items():
        rows.append(
            {
                "test": name,
                "acceptance": s["accept"] / decided if decided else float("nan"),
                "false rejections": s["false_reject"],
            }
        )
    return ExperimentResult(
        experiment_id="e11",
        title="Baseline agreement: ours vs Andersson-Tovar vs PTAS (Table 5)",
        rows=rows,
        notes=(
            f"{decided} exactly-decided instances (n=10, m=3, U/S in "
            "[0.8, 1.15]). Soundness requires zero false rejections for "
            "ours/AT/PTAS (their rejections are infeasibility proofs). "
            f"PTAS mean search nodes: "
            f"{np.mean(ptas_nodes):.0f} (max {np.max(ptas_nodes)}) vs the "
            "first-fit tests' ~n*m = 30 probes — the [11] practicality gap."
        ),
    )
