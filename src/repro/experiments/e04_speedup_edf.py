"""E4 / Figure 3 — empirical speedup-factor distribution, EDF.

On instances certified feasible for each adversary class, measure the
minimum speed augmentation at which first-fit EDF succeeds.  Theorem I.1
bounds the partitioned-adversary sample by 2; Theorem I.3 bounds the
LP-adversary sample by 2.98.  The CDF table gives the distribution shape;
`bound respected` is the reproduction's headline check.
"""

from __future__ import annotations

from ..analysis.speedup import empirical_speedup_study
from ..analysis.stats import empirical_cdf
from ..workloads.platforms import geometric_platform
from .base import DEFAULT_SEED, ExperimentResult, Scale, register


def _study_rows(studies) -> tuple[list[dict], list[dict]]:
    rows, cdf_rows = [], []
    for study in studies:
        rows.append(
            {
                "adversary": study.adversary,
                "bound": study.bound,
                "mean a*": study.summary.mean,
                "median a*": study.summary.median,
                "p95 a*": study.summary.p95,
                "max a*": study.summary.maximum,
                "bound respected": study.bound_respected,
                "tightness (max/bound)": study.tightness,
            }
        )
        xs, ys = empirical_cdf(study.alphas)
        for q in (0.25, 0.5, 0.75, 0.9, 0.99, 1.0):
            k = min(int(q * len(xs)), len(xs) - 1)
            cdf_rows.append(
                {"adversary": study.adversary, "quantile": q, "alpha*": float(xs[k])}
            )
    return rows, cdf_rows


@register("e04", "Empirical speedup factor, EDF (Fig. 3)")
def run(
    seed: int = DEFAULT_SEED, scale: Scale = "full", jobs: int | None = 1
) -> ExperimentResult:
    platform = geometric_platform(4, 8.0)
    samples = 20 if scale == "quick" else 200
    studies = [
        empirical_speedup_study(
            seed,
            platform,
            scheduler="edf",
            adversary="partitioned",
            samples=samples,
            load=0.99,
            jobs=jobs,
            name="e04/edf/partitioned",
        ),
        empirical_speedup_study(
            seed,
            platform,
            scheduler="edf",
            adversary="any",
            samples=max(10, samples // 2),
            load=0.98,
            n_tasks=2 * len(platform),  # chunky: the LP's advantage regime
            jobs=jobs,
            name="e04/edf/any",
        ),
    ]
    rows, cdf_rows = _study_rows(studies)
    return ExperimentResult(
        experiment_id="e04",
        title="Empirical speedup factor, EDF (Fig. 3)",
        rows=rows,
        extra_tables={"alpha* CDF quantiles": cdf_rows},
        notes=(
            "Instances: partitioned — constructive witness at 99% per-machine "
            "fill; any — chunky RandFixedSum at 98% LP stress, LP-verified. The "
            "bounds (2 / 2.98) are worst-case: random near-capacity instances "
            "concentrate far below them, which is itself a finding — the "
            "analyses price adversarial structure random workloads lack."
        ),
    )
