"""E17 / Table 10 — breakdown utilization distributions.

One number per instance per test: the normalized utilization at which
acceptance breaks when the instance is scaled up.  Complements the
acceptance curves (E2/E3) with a shape-free comparison of the single-
machine admissions inside the partitioner, against the exact partitioned
adversary's own breakdown.

Expected ordering (all on the same instance shapes):
``LL <= hyperbolic <= RTA <= EDF`` among first-fit admissions, and
``FF-EDF <= exact`` (first-fit's packing loss).  The EDF-to-LL median gap
is the operational cost of static priorities that Theorem I.2/I.4 pay
analytically.
"""

from __future__ import annotations

from ..analysis.acceptance import exact_edf_tester, ff_tester
from ..analysis.breakdown import breakdown_utilizations
from ..workloads.platforms import geometric_platform
from .base import DEFAULT_SEED, ExperimentResult, Scale, register


@register("e17", "Breakdown utilization distributions (Table 10)")
def run(
    seed: int = DEFAULT_SEED, scale: Scale = "full", jobs: int | None = 1
) -> ExperimentResult:
    platform = geometric_platform(4, 8.0)
    samples = 20 if scale == "quick" else 150
    study = breakdown_utilizations(
        seed,
        platform,
        {
            "FF-EDF": ff_tester("edf"),
            "FF-RMS-LL": ff_tester("rms-ll"),
            "FF-RMS-hyp": ff_tester("rms-hyperbolic"),
            "FF-RMS-RTA": ff_tester("rms-rta"),
            "exact-partitioned": exact_edf_tester(),
        },
        n_tasks=16,
        samples=samples,
        jobs=jobs,
        name="e17/breakdown",
    )
    rows = []
    for name in study.samples:
        s = study.summary(name)
        rows.append(
            {
                "test": name,
                "mean breakdown U/S": s.mean,
                "median": s.median,
                "min": s.minimum,
                "max": s.maximum,
            }
        )
    rows.sort(key=lambda r: -r["mean breakdown U/S"])
    return ExperimentResult(
        experiment_id="e17",
        title="Breakdown utilization distributions (Table 10)",
        rows=rows,
        notes=(
            f"4 machines geometric ratio 8, n=16, {samples} shared instance "
            "shapes scaled from 30% of capacity until each test rejects. "
            "The FF-EDF-to-FF-RMS-LL median gap is the capacity cost of the "
            "paper's static-priority variant; FF-EDF-to-exact is first-fit's "
            "packing loss (small on random shapes, cf. E14 for adversarial)."
        ),
    )
