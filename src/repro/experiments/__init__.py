"""The E1–E23 evaluation suite (see DESIGN.md §3).

Importing this package registers every experiment; run one with::

    from repro.experiments import get_experiment
    print(get_experiment("e01")().render())
"""

from .base import (
    DEFAULT_SEED,
    ExperimentResult,
    Scale,
    all_experiments,
    get_experiment,
    register,
    result_from_dict,
)

# Importing the modules registers the experiments.
from . import (  # noqa: F401  (import-for-side-effect)
    e01_constants,
    e02_accept_edf,
    e03_accept_rms,
    e04_speedup_edf,
    e05_speedup_rms,
    e06_runtime,
    e07_heterogeneity,
    e08_ablation,
    e09_edf_vs_rms,
    e10_adversary_gap,
    e11_baselines,
    e12_frontier,
    e13_simulation,
    e14_hard_instances,
    e15_anomalies,
    e16_migration,
    e17_breakdown,
    e22_accept_deadline,
    e23_speedup_deadline,
)

__all__ = [
    "DEFAULT_SEED",
    "ExperimentResult",
    "Scale",
    "all_experiments",
    "get_experiment",
    "register",
    "result_from_dict",
]
