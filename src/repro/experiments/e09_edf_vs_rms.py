"""E9 / Figure 6 — the EDF-vs-RMS acceptance gap vs tasks per machine.

Theorem II.3's bound ``n (2^{1/n} - 1)`` decays from 1 (one task) to
ln 2 (many tasks): the more tasks share a machine, the more capacity the
Liu–Layland admission forfeits relative to EDF's exact ``sum w <= s``.
This experiment sweeps tasks-per-machine at fixed utilization and traces
the widening gap, alongside the theoretical LL bound value.
"""

from __future__ import annotations

from ..analysis.acceptance import acceptance_sweep, ff_tester
from ..core.bounds import liu_layland_bound
from ..workloads.platforms import identical_platform
from .base import DEFAULT_SEED, ExperimentResult, Scale, register

TASKS_PER_MACHINE = (1, 2, 4, 8, 16)


@register("e09", "EDF-vs-RMS acceptance gap vs tasks per machine (Fig. 6)")
def run(
    seed: int = DEFAULT_SEED,
    scale: Scale = "full",
    jobs: int | None = 1,
    backend: str | None = None,
) -> ExperimentResult:
    m = 4
    platform = identical_platform(m)
    samples = 30 if scale == "quick" else 300
    stress = 0.72  # just above ln 2: separates LL from EDF sharply
    rows = []
    for k in TASKS_PER_MACHINE:
        n = k * m
        curve = acceptance_sweep(
            seed,
            platform,
            {
                "FF-EDF": ff_tester("edf", 1.0),
                "FF-RMS-LL": ff_tester("rms-ll", 1.0),
                "FF-RMS-RTA": ff_tester("rms-rta", 1.0),
            },
            n_tasks=n,
            normalized_utilizations=(stress,),
            samples=samples,
            jobs=jobs,
            name=f"e09/gap/{k}",
            backend=backend,
        )
        rows.append(
            {
                "tasks/machine": k,
                "LL bound n(2^(1/n)-1)": liu_layland_bound(k),
                "FF-EDF accept": curve.rates["FF-EDF"][0],
                "FF-RMS-LL accept": curve.rates["FF-RMS-LL"][0],
                "FF-RMS-RTA accept": curve.rates["FF-RMS-RTA"][0],
            }
        )
    return ExperimentResult(
        experiment_id="e09",
        title="EDF-vs-RMS acceptance gap vs tasks per machine (Fig. 6)",
        rows=rows,
        notes=(
            f"m={m} identical machines, U/S={stress}, {samples} task sets "
            "per point. The LL column is the per-machine utilization the "
            "paper's RMS admission certifies; the RTA column shows how much "
            "of the LL-vs-EDF gap is analysis pessimism rather than true "
            "fixed-priority loss."
        ),
    )
