"""E15 / Table 8 — first-fit packing-anomaly scan.

First-fit is not formally monotone in the speed augmentation: extra
capacity reroutes early tasks and can, in principle, strand a later one
(the classic bin-packing anomaly family).  The theorems are careful to
never compare verdicts across alphas — and our min-alpha search treats
monotonicity as something to *verify*, not assume.

This experiment scans random near-capacity instances' success profiles
over a fine alpha grid and reports how often non-monotone profiles occur,
per admission test.  A nonzero rate justifies the library's design; a
zero rate at scale is evidence the anomaly is rare enough to ignore in
measurement practice (the bracket search stays correct either way).
"""

from __future__ import annotations

import numpy as np

from ..analysis.ratio import alpha_success_profile
from ..workloads.builder import generate_taskset
from ..workloads.platforms import geometric_platform
from .base import DEFAULT_SEED, ExperimentResult, Scale, register


def _is_monotone(profile: np.ndarray) -> bool:
    seen_true = False
    for v in profile:
        if seen_true and not v:
            return False
        seen_true = seen_true or bool(v)
    return True


@register("e15", "First-fit packing-anomaly scan across alpha (Table 8)")
def run(seed: int = DEFAULT_SEED, scale: Scale = "full") -> ExperimentResult:
    rng = np.random.default_rng(seed)
    platform = geometric_platform(4, 8.0)
    instances = 60 if scale == "quick" else 500
    grid_points = 40 if scale == "quick" else 120
    alphas = np.linspace(1.0, 3.0, grid_points)
    rows = []
    example: str | None = None
    for test in ("edf", "rms-ll"):
        anomalies = 0
        scanned = 0
        for _ in range(instances):
            stress = float(rng.uniform(0.95, 1.6))
            taskset = generate_taskset(
                rng,
                12,
                stress * platform.total_speed,
                u_max=1.5 * platform.fastest_speed,
            )
            profile = alpha_success_profile(taskset, platform, test, alphas)
            if not profile.any() or profile.all():
                continue  # no transition inside the grid: uninformative
            scanned += 1
            if not _is_monotone(profile):
                anomalies += 1
                if example is None:
                    edge = alphas[int(np.argmax(profile))]
                    example = (
                        f"{test}: success at alpha~{edge:.3f} followed by a "
                        f"later failure"
                    )
        rows.append(
            {
                "admission": test,
                "instances with a transition": scanned,
                "non-monotone profiles": anomalies,
                "anomaly rate": anomalies / scanned if scanned else float("nan"),
            }
        )
    return ExperimentResult(
        experiment_id="e15",
        title="First-fit packing-anomaly scan across alpha (Table 8)",
        rows=rows,
        notes=(
            f"{instances} instances per admission test, {grid_points}-point "
            "alpha grid on [1, 3], near-capacity stress. "
            + (example or "No anomaly observed at this scale")
            + ". The min-alpha search brackets from a verified failure to a "
            "verified success, so its results are correct regardless."
        ),
    )
