"""E10 / Table 4 — the partitioned-vs-any adversary gap.

The paper's central question: how much of the classic factor 3 [2] is the
price of partitioning versus analysis slack?  This experiment collects
instances first-fit EDF rejects at alpha=1, classifies each by what the
adversaries can do (exact partitioned / LP), and reports the minimum
augmentation that would have sufficed per class.

Theorem-implied structure: every FF-rejected instance that is
partitioned-feasible has alpha* <= 2 (Thm I.1); every LP-feasible one has
alpha* <= 2.98 (Thm I.3); and LP-feasible-but-partition-infeasible
instances witness the genuine partitioning gap.

Execution: draws are per-trial-seeded (one :class:`Trial` per draw) and
dispatched through :func:`repro.runner.run_trials` in fixed-size rounds,
stopping after the first round that reaches the rejection target —
whole rounds only, so ``jobs=1`` and ``jobs=N`` classify the *same*
draws and the table is bit-identical for every ``--jobs`` value.
"""

from __future__ import annotations

import functools
from typing import Any

import numpy as np

from ..analysis.ratio import min_alpha_first_fit
from ..analysis.stats import summarize
from ..baselines.exact import exact_partitioned_edf_feasible
from ..core.lp import lp_feasible
from ..core.model import Platform
from ..core.partition import first_fit_partition
from ..runner import run_trials
from ..workloads.builder import generate_taskset
from ..workloads.campaigns import Campaign, Trial, campaign_seed
from ..workloads.platforms import geometric_platform
from .base import DEFAULT_SEED, ExperimentResult, Scale, register


def _classify_draw(platform: Platform, trial: Trial) -> dict[str, Any] | None:
    """One draw: None if FF-EDF(alpha=1) accepts, else its class + alpha*."""
    rng = trial.rng()
    stress = rng.uniform(0.9, 1.1)
    taskset = generate_taskset(
        rng,
        14,
        stress * platform.total_speed,
        u_max=platform.fastest_speed,
    )
    if first_fit_partition(taskset, platform, "edf", alpha=1.0).success:
        return None
    part = exact_partitioned_edf_feasible(taskset, platform)
    lp = lp_feasible(taskset, platform)
    if part is True:
        bucket = "partitioned-feasible"
    elif lp:
        bucket = "LP-only-feasible"
    else:
        bucket = "fully-infeasible"
    alpha_star = min_alpha_first_fit(taskset, platform, "edf").alpha
    return {"bucket": bucket, "alpha_star": alpha_star}


@register("e10", "Partitioned-vs-any adversary gap audit (Table 4)")
def run(
    seed: int = DEFAULT_SEED, scale: Scale = "full", jobs: int | None = 1
) -> ExperimentResult:
    platform = geometric_platform(4, 8.0)
    target_rejected = 40 if scale == "quick" else 300
    max_draws = target_rejected * 60

    trials = list(
        Campaign(
            name="e10/adversary-gap",
            grid={"n_tasks": [14]},
            replications=max_draws,
            base_seed=campaign_seed(seed),
        )
    )
    fn = functools.partial(_classify_draw, platform)
    round_size = target_rejected
    records: list[dict[str, Any] | None] = []
    for start in range(0, max_draws, round_size):
        chunk = trials[start : start + round_size]
        records.extend(
            run_trials(fn, chunk, jobs=jobs, label="e10/adversary-gap")
        )
        if sum(r is not None for r in records) >= target_rejected:
            break
    draws = len(records)

    classes: dict[str, list[float]] = {
        "partitioned-feasible": [],
        "LP-only-feasible": [],
        "fully-infeasible": [],
    }
    for record in records:
        if record is not None:
            classes[record["bucket"]].append(record["alpha_star"])

    rows = []
    bounds = {
        "partitioned-feasible": 2.0,
        "LP-only-feasible": 2.98,
        "fully-infeasible": float("nan"),
    }
    for bucket, alphas in classes.items():
        row: dict = {"class": bucket, "count": len(alphas), "bound": bounds[bucket]}
        if alphas:
            s = summarize(alphas)
            row.update(
                {"mean alpha*": s.mean, "max alpha*": s.maximum}
            )
            if not np.isnan(bounds[bucket]):
                row["bound respected"] = s.maximum <= bounds[bucket] + 2e-3
        rows.append(row)
    return ExperimentResult(
        experiment_id="e10",
        title="Partitioned-vs-any adversary gap audit (Table 4)",
        rows=rows,
        notes=(
            f"{draws} draws around capacity (U/S in [0.9, 1.1]) on a "
            "4-machine geometric platform; only FF-EDF(alpha=1) rejections "
            "are classified. 'LP-only' instances are schedulable with "
            "migration but by no partition — the gap the paper's two "
            "adversary models separate."
        ),
    )
