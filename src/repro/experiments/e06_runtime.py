"""E6 / Table 2 — runtime scaling of the first-fit test.

All four theorems claim O(nm) time (after the O(n log n) sort).  This
experiment times the partitioner across an n x m grid on near-capacity
instances; a flat ``us/(n*m)`` column confirms the bound.
"""

from __future__ import annotations

import numpy as np

from ..analysis.runtime import runtime_scaling
from .base import DEFAULT_SEED, ExperimentResult, Scale, register


@register("e06", "Runtime scaling of the first-fit test (Table 2)")
def run(seed: int = DEFAULT_SEED, scale: Scale = "full") -> ExperimentResult:
    rng = np.random.default_rng(seed)
    if scale == "quick":
        task_counts = (64, 256, 1024)
        machine_counts = (2, 8)
        repeats = 3
    else:
        task_counts = (64, 128, 256, 512, 1024, 2048, 4096)
        machine_counts = (2, 4, 8, 16, 32, 64)
        repeats = 7
    points = runtime_scaling(
        rng,
        task_counts=task_counts,
        machine_counts=machine_counts,
        repeats=repeats,
    )
    rows = [
        {
            "n": p.n_tasks,
            "m": p.m_machines,
            "ms": p.seconds * 1e3,
            "us/(n*m)": p.seconds_per_nm * 1e6,
        }
        for p in points
    ]
    norm = [p.seconds_per_nm for p in points]
    spread = max(norm) / min(norm) if min(norm) > 0 else float("inf")
    return ExperimentResult(
        experiment_id="e06",
        title="Runtime scaling of the first-fit test (Table 2)",
        rows=rows,
        notes=(
            f"Max/min spread of the normalized column: {spread:.2f}x. "
            "A bounded spread (no growth with n or m) is the O(nm) claim; "
            "small-n points pay fixed Python overheads, so the spread is "
            "dominated by the smallest grid cells."
        ),
    )
