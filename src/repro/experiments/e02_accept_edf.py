"""E2 / Figure 1 — EDF acceptance ratio vs normalized utilization.

Schedulability curves on a geometric 4-machine platform: the §III
first-fit EDF test at alpha=1 (what it can actually place) and at the
Theorem I.1 alpha=2 (its acceptance guarantee band), against the exact
partitioned adversary and the §II LP (any-schedule) oracle.

Expected shape: LP >= exact >= FF(alpha=1) pointwise; FF(alpha=1) tracks
exact closely until utilization nears capacity; everything accepted by
FF at alpha=1 is genuinely schedulable as-is.
"""

from __future__ import annotations

from ..analysis.acceptance import (
    acceptance_sweep,
    exact_edf_tester,
    ff_tester,
    lp_tester,
)
from ..workloads.platforms import geometric_platform
from .base import DEFAULT_SEED, ExperimentResult, Scale, register

GRID = (0.60, 0.70, 0.80, 0.85, 0.90, 0.925, 0.95, 0.975, 1.0)


@register("e02", "EDF acceptance ratio vs normalized utilization (Fig. 1)")
def run(
    seed: int = DEFAULT_SEED,
    scale: Scale = "full",
    jobs: int | None = 1,
    backend: str | None = None,
) -> ExperimentResult:
    platform = geometric_platform(4, 8.0)
    samples = 40 if scale == "quick" else 400
    curve = acceptance_sweep(
        seed,
        platform,
        {
            "FF-EDF(a=1)": ff_tester("edf", 1.0),
            "FF-EDF(a=2)": ff_tester("edf", 2.0),
            "exact-partitioned": exact_edf_tester(),
            "LP(any)": lp_tester(),
        },
        n_tasks=16,
        normalized_utilizations=GRID,
        samples=samples,
        jobs=jobs,
        name="e02/accept-edf",
        backend=backend,
    )
    return ExperimentResult(
        experiment_id="e02",
        title="EDF acceptance ratio vs normalized utilization (Fig. 1)",
        rows=curve.as_rows(),
        notes=(
            f"Platform: 4 machines, geometric speeds ratio 8; n=16 tasks "
            f"(UUniFast); {samples} task sets per point. FF-EDF(a=2) is the "
            "Theorem I.1 acceptance band: everything the exact partitioned "
            "adversary can schedule must be accepted there."
        ),
    )
