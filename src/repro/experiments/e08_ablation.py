"""E8 / Table 3 — ordering and fit-rule ablation.

The §III algorithm fixes three choices: tasks by decreasing utilization,
machines by increasing speed, first-fit placement.  This ablation runs
the full 3x2x3 strategy cube on the same instance stream and reports
acceptance at alpha=1 — measuring how much each choice buys in practice
(the paper justifies them analytically; the load bounds of §IV.A need
big-tasks-first onto slow-machines-first).
"""

from __future__ import annotations

import numpy as np

from ..baselines.heuristics import all_strategies, run_strategy
from ..workloads.builder import generate_taskset
from ..workloads.platforms import geometric_platform
from .base import DEFAULT_SEED, ExperimentResult, Scale, register


@register("e08", "Task/machine ordering and fit-rule ablation (Table 3)")
def run(seed: int = DEFAULT_SEED, scale: Scale = "full") -> ExperimentResult:
    rng = np.random.default_rng(seed)
    platform = geometric_platform(4, 8.0)
    samples = 60 if scale == "quick" else 600
    stress = 0.9
    instances = [
        generate_taskset(
            rng,
            16,
            stress * platform.total_speed,
            u_max=platform.fastest_speed,
        )
        for _ in range(samples)
    ]
    rows = []
    for strategy in all_strategies():
        accepted = sum(
            1
            for taskset in instances
            if run_strategy(strategy, taskset, platform, "edf", alpha=1.0).success
        )
        rows.append(
            {
                "strategy": strategy.label
                + ("  <- paper" if strategy.label == "util-desc/speed-asc/first" else ""),
                "acceptance": accepted / samples,
            }
        )
    rows.sort(key=lambda r: -r["acceptance"])
    return ExperimentResult(
        experiment_id="e08",
        title="Task/machine ordering and fit-rule ablation (Table 3)",
        rows=rows,
        notes=(
            f"EDF admission, alpha=1, U/S={stress}, n=16, {samples} shared "
            "instances. Decreasing-utilization task order dominates; the "
            "machine order and fit rule matter less at alpha=1 but "
            "decreasing order is what the worst-case analysis relies on."
        ),
    )
