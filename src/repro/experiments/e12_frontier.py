"""E12 / Figure 7 — the constant-optimization frontier.

The proof constants are free parameters.  Pinning the fast-machine
threshold constant ``c_f`` and minimizing alpha over the rest traces a
frontier whose minimum is the technique's best achievable approximation
factor — landing at the paper's 2.98 (EDF) and 3.34 (RMS).  The frontier
also shows the trade-off: too-small c_f starves the fast-case condition,
too-large c_f starves the split condition.
"""

from __future__ import annotations

import math

from ..core.constants import alpha_frontier, minimal_alpha
from .base import DEFAULT_SEED, ExperimentResult, Scale, register

C_F_GRID = (4.0, 8.0, 13.25, 20.0, 28.412, 40.0, 80.0, 160.0)


@register("e12", "Constant-optimization frontier (Fig. 7)")
def run(seed: int = DEFAULT_SEED, scale: Scale = "full") -> ExperimentResult:
    tol = 5e-3 if scale == "quick" else 2e-3
    rows = []
    edf_frontier = dict(alpha_frontier("edf", list(C_F_GRID), tol=tol))
    rms_frontier = dict(alpha_frontier("rms", list(C_F_GRID), tol=tol))
    for c_f in C_F_GRID:
        rows.append(
            {
                "c_f": c_f,
                "min alpha (EDF)": edf_frontier[c_f]
                if math.isfinite(edf_frontier[c_f])
                else float("inf"),
                "min alpha (RMS)": rms_frontier[c_f]
                if math.isfinite(rms_frontier[c_f])
                else float("inf"),
            }
        )
    grid = 100 if scale == "quick" else 200
    a_edf, _ = minimal_alpha("edf", grid=grid)
    a_rms, _ = minimal_alpha("rms", grid=grid)
    opt_rows = [
        {"scheduler": "edf", "global min alpha": a_edf, "paper": 2.98},
        {"scheduler": "rms", "global min alpha": a_rms, "paper": 3.34},
    ]
    return ExperimentResult(
        experiment_id="e12",
        title="Constant-optimization frontier (Fig. 7)",
        rows=rows,
        extra_tables={"Global optimum over all constants": opt_rows},
        notes=(
            "The frontier minima sit at the paper's printed c_f values "
            "(28.412 for EDF, 13.25 for RMS), and the global optima match "
            "the headline 2.98 / 3.34 to the paper's rounding."
        ),
    )
